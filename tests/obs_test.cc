/** @file Observability layer tests: metrics registry, background events,
 *  collector sampling, trace JSON, series parsing, and the
 *  zero-overhead-when-disabled guarantee. */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "sim/builder.h"
#include "test_util.h"
#include "tools/log_parser.h"

namespace ss {
namespace {

std::string
slurp(const std::string& path)
{
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream oss;
    oss << file.rdbuf();
    return oss.str();
}

// ----- registry + instruments -----

TEST(MetricsRegistry, FindOrCreateReturnsSameInstrument)
{
    obs::MetricsRegistry registry;
    obs::Counter* c1 = registry.counter("a.b.count");
    obs::Counter* c2 = registry.counter("a.b.count");
    EXPECT_EQ(c1, c2);
    c1->inc();
    c2->add(4);
    EXPECT_EQ(c1->value(), 5u);

    obs::Gauge* g = registry.gauge("a.b.level");
    g->set(2.5);
    EXPECT_DOUBLE_EQ(registry.gauge("a.b.level")->value(), 2.5);
    EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, KindCollisionIsFatal)
{
    obs::MetricsRegistry registry;
    registry.counter("x");
    EXPECT_THROW(registry.gauge("x"), FatalError);
    EXPECT_THROW(registry.histogram("x"), FatalError);
    EXPECT_THROW(registry.polledGauge("x", []() { return 0.0; }),
                 FatalError);
}

TEST(MetricsRegistry, FindAndInsertionOrder)
{
    obs::MetricsRegistry registry;
    registry.counter("first");
    registry.histogram("second");
    registry.gauge("third");
    EXPECT_EQ(registry.find("second")->kind(),
              obs::MetricKind::kHistogram);
    EXPECT_EQ(registry.find("missing"), nullptr);
    EXPECT_EQ(registry.at(0).name(), "first");
    EXPECT_EQ(registry.at(1).name(), "second");
    EXPECT_EQ(registry.at(2).name(), "third");
}

TEST(MetricsRegistry, PolledGaugeEvaluatesOnRead)
{
    obs::MetricsRegistry registry;
    double source = 1.0;
    obs::Gauge* g =
        registry.polledGauge("poll", [&source]() { return source; });
    EXPECT_TRUE(g->polled());
    EXPECT_DOUBLE_EQ(g->value(), 1.0);
    source = 7.0;
    EXPECT_DOUBLE_EQ(g->value(), 7.0);
}

TEST(Histogram, EmptyHistogramYieldsNanAndCountOnlySnapshot)
{
    obs::Histogram h("empty");
    EXPECT_EQ(h.count(), 0u);
    // An empty distribution has no mean or percentiles: NaN, not a
    // plausible-but-wrong 0.0.
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.percentile(50)));
    EXPECT_TRUE(std::isnan(h.percentile(99)));
    // The snapshot must skip the NaN aggregates (NaN is invalid JSON and
    // would poison JSONL series files) and emit only the count row.
    std::vector<std::pair<std::string, double>> rows;
    h.snapshot(&rows);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].first, ".count");
    EXPECT_DOUBLE_EQ(rows[0].second, 0.0);
    // One recording restores the full row set.
    h.record(7);
    rows.clear();
    h.snapshot(&rows);
    EXPECT_EQ(rows.size(), 6u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, AggregatesAndPercentiles)
{
    obs::Histogram h("lat");
    for (std::uint64_t v : {1u, 2u, 3u, 4u, 100u}) {
        h.record(v);
    }
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 22.0);
    // Power-of-two buckets: percentiles are within 2x, monotone.
    EXPECT_LE(h.percentile(50), h.percentile(99));
    EXPECT_LE(h.percentile(99), static_cast<double>(h.max()));
    EXPECT_GE(h.percentile(0), 0.0);

    std::vector<std::pair<std::string, double>> snap;
    h.snapshot(&snap);
    ASSERT_EQ(snap.size(), 6u);
    EXPECT_EQ(snap[0].first, ".count");
    EXPECT_DOUBLE_EQ(snap[0].second, 5.0);
}

// ----- background events -----

TEST(Simulator, BackgroundEventsDoNotExtendRun)
{
    Simulator sim;
    std::vector<int> order;
    CallbackEvent bg1([&]() { order.push_back(-1); });
    CallbackEvent bg2([&]() { order.push_back(-2); });
    sim.schedule(&bg1, Time(5), /*background=*/true);
    sim.schedule(&bg2, Time(50), /*background=*/true);
    sim.schedule(Time(10), [&]() { order.push_back(1); });
    sim.run();
    // The background event at tick 5 runs (a foreground event is still
    // pending); the one at tick 50 is past the last foreground event and
    // never executes.
    EXPECT_EQ(order, (std::vector<int>{-1, 1}));
    EXPECT_EQ(sim.now().tick, 10u);
    EXPECT_EQ(sim.eventsExecuted(), 2u);
}

TEST(Simulator, BackgroundOnlyQueueDoesNotRun)
{
    Simulator sim;
    bool ran = false;
    CallbackEvent bg([&]() { ran = true; });
    sim.schedule(&bg, Time(1), /*background=*/true);
    EXPECT_EQ(sim.run(), 0u);
    EXPECT_FALSE(ran);
}

// ----- trace writer -----

TEST(TraceWriter, EmitsWellFormedChromeTraceJson)
{
    std::string path = testing::TempDir() + "obs_trace_unit.json";
    {
        obs::TraceWriter trace(path, true, true, true, 0);
        trace.processName(obs::TraceWriter::kPidEngine, "engine");
        trace.threadName(obs::TraceWriter::kPidRouters, 3, "router_3");
        trace.completeEvent(obs::TraceWriter::kPidRouters, 3, "pkt m1.0",
                            "hop", 100, 7, "{\"in_port\":2}");
        trace.counterEvent(obs::TraceWriter::kPidEngine, "queue_depth",
                           100, 42.0);
        trace.close();
        EXPECT_EQ(trace.eventCount(), 4u);
    }
    json::Value doc = json::parseFile(path);
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.size(), 4u);
    EXPECT_EQ(doc.at(2).at("ph").asString(), "X");
    EXPECT_EQ(doc.at(2).at("ts").asUint(), 100u);
    EXPECT_EQ(doc.at(2).at("dur").asUint(), 7u);
    EXPECT_EQ(doc.at(2).at("args").at("in_port").asUint(), 2u);
    EXPECT_EQ(doc.at(3).at("ph").asString(), "C");
}

TEST(TraceWriter, MaxEventsTruncates)
{
    std::string path = testing::TempDir() + "obs_trace_trunc.json";
    obs::TraceWriter trace(path, true, true, true, /*max_events=*/2);
    for (int i = 0; i < 5; ++i) {
        trace.completeEvent(obs::TraceWriter::kPidPackets, 0, "e", "c",
                            i, 1);
    }
    trace.close();
    EXPECT_TRUE(trace.truncated());
    json::Value doc = json::parseFile(path);
    EXPECT_EQ(doc.size(), 2u);
}

TEST(TraceWriter, JsonEscape)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// ----- series parser -----

TEST(SeriesParser, ParsesCsvAndFilters)
{
    std::string text =
        "tick,name,value\n"
        "100,engine.queue_depth,5\n"
        "100,router_0.sa_grants,17\n"
        "200,engine.queue_depth,6\n";
    auto points = SeriesParser::parseText(text);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[1].tick, 100u);
    EXPECT_EQ(points[1].name, "router_0.sa_grants");
    EXPECT_DOUBLE_EQ(points[1].value, 17.0);

    auto by_name = SeriesParser::apply(points, {"+name=queue_depth"});
    EXPECT_EQ(by_name.size(), 2u);
    auto by_tick = SeriesParser::apply(points, {"+tick=150-300"});
    ASSERT_EQ(by_tick.size(), 1u);
    EXPECT_EQ(by_tick[0].tick, 200u);
    auto both = SeriesParser::apply(
        points, {"+name=queue_depth", "+tick=100"});
    EXPECT_EQ(both.size(), 1u);
    EXPECT_THROW(SeriesParser::apply(points, {"+bogus=1"}), FatalError);
}

TEST(SeriesParser, ParsesJsonl)
{
    std::string text =
        "{\"tick\":100,\"metrics\":{\"a\":1.5,\"b\":2}}\n"
        "{\"tick\":200,\"metrics\":{\"a\":3}}\n";
    auto points = SeriesParser::parseText(text);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].name, "a");
    EXPECT_DOUBLE_EQ(points[0].value, 1.5);
    EXPECT_EQ(points[2].tick, 200u);
}

TEST(SeriesParser, LooksLikeSeries)
{
    EXPECT_TRUE(SeriesParser::looksLikeSeries("tick,name,value"));
    EXPECT_TRUE(SeriesParser::looksLikeSeries("{\"tick\":0}"));
    EXPECT_FALSE(SeriesParser::looksLikeSeries(
        "id,app,src,dst,create,inject,deliver"));
}

// ----- end-to-end: collector + zero overhead -----

json::Value
obsConfig(const std::string& series, const std::string& trace,
          std::uint64_t interval)
{
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [4, 4], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 5,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8},
            "routing": {"algorithm": "torus_dimension_order"}})");
    json::Value obs = json::Value::object();
    obs["enabled"] = true;
    obs["sample_interval"] = interval;
    obs["series_file"] = series;
    obs["trace_file"] = trace;
    config["observability"] = std::move(obs);
    return config;
}

TEST(Observability, DisabledIsBitIdenticalToAbsent)
{
    json::Value plain = test::makeConfig(
        R"({"topology": "torus", "widths": [4, 4], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 5,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8},
            "routing": {"algorithm": "torus_dimension_order"}})");
    json::Value disabled = plain;
    json::Value obs = json::Value::object();
    obs["enabled"] = false;
    disabled["observability"] = std::move(obs);

    RunResult a = runSimulation(plain);
    RunResult b = runSimulation(disabled);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.sampler.count(), b.sampler.count());
}

TEST(Observability, EnabledKeepsSimulationResults)
{
    json::Value plain = test::makeConfig(
        R"({"topology": "torus", "widths": [4, 4], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 5,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8},
            "routing": {"algorithm": "torus_dimension_order"}})");
    RunResult a = runSimulation(plain);

    std::string series = testing::TempDir() + "obs_e2e_series.csv";
    std::string trace = testing::TempDir() + "obs_e2e_trace.json";
    RunResult b = runSimulation(obsConfig(series, trace, 500));
    // Background sampling must not perturb the simulation itself.
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.sampler.count(), b.sampler.count());
    EXPECT_DOUBLE_EQ(a.throughput(), b.throughput());
}

TEST(Observability, SeriesHasManyInstrumentsAtInterval)
{
    std::string series = testing::TempDir() + "obs_series.csv";
    std::string trace = testing::TempDir() + "obs_series_trace.json";
    RunResult result = runSimulation(obsConfig(series, trace, 250));
    ASSERT_GT(result.endTick, 250u);

    auto points = SeriesParser::parseFile(series);
    ASSERT_FALSE(points.empty());
    std::set<std::string> names;
    std::set<std::uint64_t> ticks;
    for (const auto& p : points) {
        names.insert(p.name);
        ticks.insert(p.tick);
        EXPECT_EQ(p.tick % 250u, 0u) << p.name;
    }
    EXPECT_GE(names.size(), 3u);
    EXPECT_GE(ticks.size(), 2u);
    // Engine + network + router + interface layers all report.
    EXPECT_TRUE(names.count("engine.events_executed"));
    EXPECT_TRUE(names.count("network.messages_in_flight"));
    EXPECT_TRUE(names.count("network.router_0.sa_grants"));
    EXPECT_TRUE(names.count("network.interface_0.flits_injected"));
}

TEST(Observability, IdenticalSeedsGiveIdenticalSeriesFiles)
{
    std::string s1 = testing::TempDir() + "obs_det_1.csv";
    std::string s2 = testing::TempDir() + "obs_det_2.csv";
    std::string t1 = testing::TempDir() + "obs_det_1.json";
    std::string t2 = testing::TempDir() + "obs_det_2.json";
    runSimulation(obsConfig(s1, t1, 500));
    runSimulation(obsConfig(s2, t2, 500));
    EXPECT_EQ(slurp(s1), slurp(s2));
}

TEST(Observability, TraceFileIsLoadableJson)
{
    std::string series = testing::TempDir() + "obs_trace_series.csv";
    std::string trace = testing::TempDir() + "obs_trace_full.json";
    runSimulation(obsConfig(series, trace, 500));

    json::Value doc = json::parseFile(trace);
    ASSERT_TRUE(doc.isArray());
    ASSERT_GT(doc.size(), 0u);
    bool sawPacket = false, sawHop = false, sawCounter = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const json::Value& e = doc.at(i);
        std::string ph = e.at("ph").asString();
        if (ph == "X" && e.at("cat").asString() == "packet") {
            sawPacket = true;
        } else if (ph == "X" && e.at("cat").asString() == "hop") {
            sawHop = true;
        } else if (ph == "C") {
            sawCounter = true;
        }
    }
    EXPECT_TRUE(sawPacket);
    EXPECT_TRUE(sawHop);
    EXPECT_TRUE(sawCounter);
}

TEST(Observability, JsonlSeriesFormat)
{
    std::string series = testing::TempDir() + "obs_series.jsonl";
    std::string trace = testing::TempDir() + "obs_jsonl_trace.json";
    runSimulation(obsConfig(series, trace, 500));
    auto points = SeriesParser::parseFile(series);
    ASSERT_FALSE(points.empty());
    std::set<std::string> names;
    for (const auto& p : points) {
        names.insert(p.name);
    }
    EXPECT_GE(names.size(), 3u);
}

TEST(RunResult, ToJsonCarriesEngineAndLatency)
{
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [2, 2], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 5,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8},
            "routing": {"algorithm": "torus_dimension_order"}})");
    RunResult result = runSimulation(config);
    json::Value doc = result.toJson();
    EXPECT_EQ(doc.at("events_executed").asUint(), result.eventsExecuted);
    EXPECT_EQ(doc.at("end_tick").asUint(), result.endTick);
    EXPECT_FALSE(doc.at("saturated").asBool());
    EXPECT_GT(doc.at("engine").at("event_rate").asFloat(), 0.0);
    EXPECT_GT(doc.at("engine").at("peak_queue_depth").asUint(), 0u);
    EXPECT_EQ(doc.at("latency").at("sampled_messages").asUint(),
              result.sampler.count());
    EXPECT_GT(doc.at("latency").at("total").at("mean").asFloat(), 0.0);
    // Round-trips through the serializer.
    json::Value reparsed = json::parse(doc.toString(2));
    EXPECT_EQ(reparsed.at("end_tick").asUint(), result.endTick);
}

}  // namespace
}  // namespace ss
