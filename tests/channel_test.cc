/** @file Channel and credit channel tests: latency, bandwidth policing,
 *  utilization accounting. */
#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.h"
#include "network/channel.h"
#include "network/credit_channel.h"
#include "types/message.h"

namespace ss {
namespace {

/** Captures deliveries with their timestamps. */
class RecordingSink : public FlitReceiver, public CreditReceiver {
  public:
    explicit RecordingSink(Simulator* sim) : sim_(sim) {}

    void
    receiveFlit(std::uint32_t port, Flit* flit) override
    {
        flits.emplace_back(port, flit, sim_->now());
    }

    void
    receiveCredit(std::uint32_t port, Credit credit) override
    {
        credits.emplace_back(port, credit.vc, sim_->now());
    }

    std::vector<std::tuple<std::uint32_t, Flit*, Time>> flits;
    std::vector<std::tuple<std::uint32_t, std::uint32_t, Time>> credits;

  private:
    Simulator* sim_;
};

TEST(Channel, DeliversAfterLatency)
{
    Simulator sim;
    RecordingSink sink(&sim);
    Channel channel(&sim, "ch", nullptr, 50, 1);
    channel.setSink(&sink, 3);
    Message msg(1, 0, 0, 1, 1, 8);
    Flit* flit = msg.packet(0)->flit(0);

    sim.schedule(Time(10), [&]() { channel.inject(flit, 10); });
    sim.run();
    ASSERT_EQ(sink.flits.size(), 1u);
    auto [port, delivered, when] = sink.flits[0];
    EXPECT_EQ(port, 3u);
    EXPECT_EQ(delivered, flit);
    EXPECT_EQ(when, Time(60, eps::kDelivery));
}

TEST(Channel, EnforcesOneFlitPerCycle)
{
    Simulator sim;
    RecordingSink sink(&sim);
    Channel channel(&sim, "ch", nullptr, 5, 2);  // 2-tick cycle
    channel.setSink(&sink, 0);
    Message msg(1, 0, 0, 1, 3, 8);

    sim.schedule(Time(0), [&]() {
        EXPECT_TRUE(channel.available(0));
        channel.inject(msg.packet(0)->flit(0), 0);
        EXPECT_FALSE(channel.available(1));
        EXPECT_TRUE(channel.available(2));
        channel.inject(msg.packet(0)->flit(1), 2);
        EXPECT_EQ(channel.nextFreeTick(), 4u);
    });
    sim.run();
    EXPECT_EQ(sink.flits.size(), 2u);
    EXPECT_EQ(channel.flitCount(), 2u);
}

using ChannelDeathTest = ::testing::Test;

TEST(ChannelDeathTest, OversubscriptionPanics)
{
    Simulator sim;
    RecordingSink sink(&sim);
    Channel channel(&sim, "ch", nullptr, 5, 2);
    channel.setSink(&sink, 0);
    Message msg(1, 0, 0, 1, 2, 8);
    sim.schedule(Time(0), [&]() {
        channel.inject(msg.packet(0)->flit(0), 0);
        EXPECT_DEATH(channel.inject(msg.packet(0)->flit(1), 1),
                     "oversubscribed");
    });
    sim.run();
}

TEST(Channel, UtilizationTracksBusyFraction)
{
    Simulator sim;
    RecordingSink sink(&sim);
    Channel channel(&sim, "ch", nullptr, 1, 1);
    channel.setSink(&sink, 0);
    Message msg(1, 0, 0, 1, 5, 8);
    for (Tick t = 0; t < 5; ++t) {
        sim.schedule(Time(t * 2), [&, t]() {
            channel.inject(msg.packet(0)->flit(
                               static_cast<std::uint32_t>(t)),
                           t * 2);
        });
    }
    sim.run();
    // 5 flits over 9 elapsed ticks (last event at tick 8+1 latency).
    EXPECT_NEAR(channel.utilization(), 5.0 / 9.0, 0.01);
}

TEST(CreditChannel, DeliversCreditsAfterLatency)
{
    Simulator sim;
    RecordingSink sink(&sim);
    CreditChannel channel(&sim, "cr", nullptr, 25);
    channel.setSink(&sink, 7);
    sim.schedule(Time(100), [&]() {
        channel.inject(Credit{2, 1}, 100);
        channel.inject(Credit{0, 1}, 100);  // no bandwidth limit
    });
    sim.run();
    ASSERT_EQ(sink.credits.size(), 2u);
    EXPECT_EQ(std::get<0>(sink.credits[0]), 7u);
    EXPECT_EQ(std::get<1>(sink.credits[0]), 2u);
    EXPECT_EQ(std::get<2>(sink.credits[0]), Time(125, eps::kDelivery));
    EXPECT_EQ(channel.creditCount(), 2u);
}

TEST(Channel, InvalidParametersAreFatal)
{
    Simulator sim;
    EXPECT_THROW(Channel(&sim, "bad1", nullptr, 0, 1), FatalError);
    EXPECT_THROW(Channel(&sim, "bad2", nullptr, 1, 0), FatalError);
    EXPECT_THROW(CreditChannel(&sim, "bad3", nullptr, 0), FatalError);
}

}  // namespace
}  // namespace ss
