/** @file Congestion sensor tests: accounting styles and the delayed
 *  visibility at the heart of the paper's §VI-A case study. */
#include <gtest/gtest.h>

#include <memory>

#include "congestion/credit_sensor.h"
#include "core/simulator.h"
#include "json/settings.h"

namespace ss {
namespace {

std::unique_ptr<CreditSensor>
makeSensor(Simulator* sim, const std::string& settings_text,
           std::uint32_t ports = 2, std::uint32_t vcs = 2)
{
    static int counter = 0;
    json::Value settings = json::parse(settings_text);
    auto sensor = std::make_unique<CreditSensor>(
        sim, strf("sensor_", counter++), nullptr, ports, vcs, settings);
    for (std::uint32_t p = 0; p < ports; ++p) {
        for (std::uint32_t v = 0; v < vcs; ++v) {
            sensor->initCapacity(p, v, CreditPool::kOutputQueue, 16);
            sensor->initCapacity(p, v, CreditPool::kDownstream, 8);
        }
    }
    return sensor;
}

TEST(CreditSensor, ZeroLatencyIsImmediatelyVisible)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"latency": 0})");
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 0.0);
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +3);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 3.0);
    sensor->creditEvent(0, 0, CreditPool::kDownstream, -1);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 2.0);
}

TEST(CreditSensor, LatencyDelaysVisibilityNotActual)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"latency": 10})");
    CreditSensor* raw = sensor.get();
    sim.schedule(Time(100), [raw]() {
        raw->creditEvent(0, 0, CreditPool::kDownstream, +5);
    });
    // Visible value lags by exactly the propagation latency.
    sim.schedule(Time(105), [raw]() {
        EXPECT_DOUBLE_EQ(raw->status(0, 0), 0.0);
        EXPECT_DOUBLE_EQ(raw->actualStatus(0, 0), 5.0);
    });
    sim.schedule(Time(111), [raw]() {
        EXPECT_DOUBLE_EQ(raw->status(0, 0), 5.0);
    });
    sim.run();
}

TEST(CreditSensor, DelayedUpdatesInterleaveCorrectly)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"latency": 4})");
    CreditSensor* raw = sensor.get();
    for (Tick t = 0; t < 8; ++t) {
        sim.schedule(Time(t), [raw]() {
            raw->creditEvent(1, 1, CreditPool::kDownstream, +1);
        });
    }
    sim.schedule(Time(7, 7), [raw]() {
        // Events from ticks 0..3 are visible by tick 7 (epsilon after
        // the sensor updates at eps::kSensor).
        EXPECT_DOUBLE_EQ(raw->status(1, 1), 4.0);
        EXPECT_DOUBLE_EQ(raw->actualStatus(1, 1), 8.0);
    });
    sim.run();
    EXPECT_DOUBLE_EQ(raw->status(1, 1), 8.0);
}

TEST(CreditSensor, PoolSelectionOutput)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"pools": "output"})");
    sensor->creditEvent(0, 0, CreditPool::kOutputQueue, +4);
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +2);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 4.0);
}

TEST(CreditSensor, PoolSelectionDownstream)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"pools": "downstream"})");
    sensor->creditEvent(0, 0, CreditPool::kOutputQueue, +4);
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +2);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 2.0);
}

TEST(CreditSensor, PoolSelectionBothSums)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"pools": "both"})");
    sensor->creditEvent(0, 0, CreditPool::kOutputQueue, +4);
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +2);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 6.0);
}

TEST(CreditSensor, VcGranularityIsolatesVcs)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"granularity": "vc"})");
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +5);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(sensor->status(0, 1), 0.0);
}

TEST(CreditSensor, PortGranularityAggregatesVcs)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({"granularity": "port"})");
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +5);
    sensor->creditEvent(0, 1, CreditPool::kDownstream, +3);
    // Port-based accounting reports the same value for every VC of the
    // port (paper §VI-B).
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 8.0);
    EXPECT_DOUBLE_EQ(sensor->status(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(sensor->status(1, 0), 0.0);
}

TEST(CreditSensor, NormalizedModeDividesByCapacity)
{
    Simulator sim;
    auto sensor = makeSensor(
        &sim, R"({"mode": "normalized", "pools": "downstream"})");
    sensor->creditEvent(0, 0, CreditPool::kDownstream, +4);
    EXPECT_DOUBLE_EQ(sensor->status(0, 0), 0.5);  // 4 of 8
}

TEST(CreditSensor, SixAccountingStylesOfFigure10)
{
    // The cross product the paper's §VI-B case study sweeps.
    Simulator sim;
    for (const char* granularity : {"vc", "port"}) {
        for (const char* pools : {"output", "downstream", "both"}) {
            auto sensor = makeSensor(
                &sim, strf(R"({"granularity": ")", granularity,
                           R"(", "pools": ")", pools, R"("})"));
            sensor->creditEvent(0, 0, CreditPool::kOutputQueue, +1);
            sensor->creditEvent(0, 1, CreditPool::kDownstream, +1);
            EXPECT_GE(sensor->status(0, 0) + sensor->status(0, 1), 1.0);
        }
    }
}

TEST(CreditSensor, LaggedValueConvergesForEveryStyleAndLatency)
{
    // Full sweep of the accounting cross product x propagation latency:
    // once in-flight updates drain, the lagged (visible) value must equal
    // the exact occupancy for every (port, vc) — latency delays
    // visibility, it never loses or distorts updates.
    //
    // Event pattern (all on port 0):
    //   tick 5:  output +4 on vc 0, downstream +2 on vc 1
    //   tick 20: downstream +1 on vc 0
    struct Expect {
        const char* pools;
        const char* granularity;
        double vc0;
        double vc1;
    };
    const Expect kExpected[] = {
        {"output", "vc", 4.0, 0.0},     {"output", "port", 4.0, 4.0},
        {"downstream", "vc", 1.0, 2.0}, {"downstream", "port", 3.0, 3.0},
        {"both", "vc", 5.0, 2.0},       {"both", "port", 7.0, 7.0},
    };
    for (const Expect& expect : kExpected) {
        for (Tick latency : {Tick{0}, Tick{3}, Tick{17}}) {
            Simulator sim;
            auto sensor = makeSensor(
                &sim, strf(R"({"granularity": ")", expect.granularity,
                           R"(", "pools": ")", expect.pools,
                           R"(", "latency": )", latency, "}"));
            CreditSensor* raw = sensor.get();
            sim.schedule(Time(5), [raw]() {
                raw->creditEvent(0, 0, CreditPool::kOutputQueue, +4);
                raw->creditEvent(0, 1, CreditPool::kDownstream, +2);
            });
            sim.schedule(Time(20), [raw]() {
                raw->creditEvent(0, 0, CreditPool::kDownstream, +1);
            });
            if (latency > 0) {
                // Mid-flight, the visible value lags the exact one.
                sim.schedule(Time(5, 7), [raw, &expect]() {
                    EXPECT_DOUBLE_EQ(raw->status(0, 0), 0.0)
                        << expect.pools << "/" << expect.granularity;
                });
            }
            sim.run();
            // Drained: lagged == exact == the expected occupancy.
            EXPECT_DOUBLE_EQ(raw->status(0, 0), expect.vc0)
                << expect.pools << "/" << expect.granularity
                << " latency " << latency;
            EXPECT_DOUBLE_EQ(raw->status(0, 1), expect.vc1)
                << expect.pools << "/" << expect.granularity
                << " latency " << latency;
            EXPECT_DOUBLE_EQ(raw->status(0, 0), raw->actualStatus(0, 0));
            EXPECT_DOUBLE_EQ(raw->status(0, 1), raw->actualStatus(0, 1));
            // Untouched port stays at zero everywhere.
            EXPECT_DOUBLE_EQ(raw->status(1, 0), 0.0);
        }
    }
}

TEST(CreditSensor, InvalidSettingsAreFatal)
{
    Simulator sim;
    EXPECT_THROW(makeSensor(&sim, R"({"granularity": "flit"})"),
                 FatalError);
    EXPECT_THROW(makeSensor(&sim, R"({"pools": "everything"})"),
                 FatalError);
    EXPECT_THROW(makeSensor(&sim, R"({"mode": "fancy"})"), FatalError);
}

using CongestionDeathTest = ::testing::Test;

TEST(CongestionDeathTest, NegativeOccupancyPanics)
{
    Simulator sim;
    auto sensor = makeSensor(&sim, R"({})");
    EXPECT_DEATH(sensor->creditEvent(0, 0, CreditPool::kDownstream, -1),
                 "negative");
}

}  // namespace
}  // namespace ss
