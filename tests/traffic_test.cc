/** @file Traffic pattern tests: range, determinism, permutation
 *  structure, and topology-aware adversarial shapes. */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/simulator.h"
#include "json/settings.h"
#include "traffic/traffic_pattern.h"

namespace ss {
namespace {

std::unique_ptr<TrafficPattern>
makePattern(Simulator* sim, const std::string& type,
            std::uint32_t terminals, std::uint32_t self,
            const std::string& settings_text = "{}")
{
    static int counter = 0;
    return TrafficPatternFactory::instance().createUnique(
        type, sim, strf("traffic_", counter++), nullptr, terminals, self,
        json::parse(settings_text));
}

TEST(UniformRandom, DestinationsInRangeAndNotSelf)
{
    Simulator sim;
    auto pattern = makePattern(&sim, "uniform_random", 16, 5);
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t dest = pattern->nextDestination();
        EXPECT_LT(dest, 16u);
        EXPECT_NE(dest, 5u);
    }
}

TEST(UniformRandom, CoversAllOtherDestinations)
{
    Simulator sim;
    auto pattern = makePattern(&sim, "uniform_random", 8, 0);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i) {
        seen.insert(pattern->nextDestination());
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(UniformRandom, SendToSelfOption)
{
    Simulator sim;
    auto pattern = makePattern(&sim, "uniform_random", 4, 1,
                               R"({"send_to_self": true})");
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(pattern->nextDestination());
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(BitComplement, IsSelfInverse)
{
    Simulator sim;
    for (std::uint32_t n : {8u, 16u, 64u}) {
        for (std::uint32_t t = 0; t < n; ++t) {
            auto p = makePattern(&sim, "bit_complement", n, t);
            std::uint32_t d = p->nextDestination();
            EXPECT_EQ(d, n - 1 - t);
            auto back = makePattern(&sim, "bit_complement", n, d);
            EXPECT_EQ(back->nextDestination(), t);
        }
    }
}

TEST(Tornado, RotatesHalfwayPerDimension)
{
    Simulator sim;
    // 1-D ring of 8 routers, concentration 1: offset ceil(8/2)-1 = 3.
    for (std::uint32_t t = 0; t < 8; ++t) {
        auto p = makePattern(&sim, "tornado", 8, t,
                             R"({"widths": [8], "concentration": 1})");
        EXPECT_EQ(p->nextDestination(), (t + 3) % 8);
    }
}

TEST(Tornado, MultiDimensionalWithConcentration)
{
    Simulator sim;
    // 4x4 routers, concentration 2 -> 32 terminals; offset 1 per dim.
    auto p = makePattern(&sim, "tornado", 32, 0,
                         R"({"widths": [4, 4], "concentration": 2})");
    // router (0,0) -> (1,1) = router 5, keep offset 0 -> terminal 10.
    EXPECT_EQ(p->nextDestination(), 10u);
}

TEST(Tornado, ShapeMismatchIsFatal)
{
    Simulator sim;
    EXPECT_THROW(makePattern(&sim, "tornado", 9, 0,
                             R"({"widths": [8], "concentration": 1})"),
                 FatalError);
}

TEST(Transpose, SwapsRowAndColumn)
{
    Simulator sim;
    const std::uint32_t side = 4;
    for (std::uint32_t t = 0; t < side * side; ++t) {
        auto p = makePattern(&sim, "transpose", side * side, t);
        std::uint32_t d = p->nextDestination();
        EXPECT_EQ(d, (t % side) * side + t / side);
    }
}

TEST(Transpose, NonSquareIsFatal)
{
    Simulator sim;
    EXPECT_THROW(makePattern(&sim, "transpose", 12, 0), FatalError);
}

TEST(BitReverse, ReversesAddressBits)
{
    Simulator sim;
    auto p = makePattern(&sim, "bit_reverse", 8, 1);  // 001 -> 100
    EXPECT_EQ(p->nextDestination(), 4u);
    auto q = makePattern(&sim, "bit_reverse", 8, 6);  // 110 -> 011
    EXPECT_EQ(q->nextDestination(), 3u);
}

TEST(BitReverse, IsSelfInverse)
{
    Simulator sim;
    for (std::uint32_t t = 0; t < 16; ++t) {
        auto p = makePattern(&sim, "bit_reverse", 16, t);
        std::uint32_t d = p->nextDestination();
        auto back = makePattern(&sim, "bit_reverse", 16, d);
        EXPECT_EQ(back->nextDestination(), t);
    }
}

TEST(BitReverse, NonPowerOfTwoIsFatal)
{
    Simulator sim;
    EXPECT_THROW(makePattern(&sim, "bit_reverse", 12, 0), FatalError);
}

TEST(Neighbor, StridesWithWrap)
{
    Simulator sim;
    auto p = makePattern(&sim, "neighbor", 8, 7);
    EXPECT_EQ(p->nextDestination(), 0u);
    auto q = makePattern(&sim, "neighbor", 8, 2, R"({"offset": 3})");
    EXPECT_EQ(q->nextDestination(), 5u);
}

TEST(SingleTarget, AlwaysHitsTarget)
{
    Simulator sim;
    auto p = makePattern(&sim, "single_target", 8, 3, R"({"target": 0})");
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(p->nextDestination(), 0u);
    }
    EXPECT_THROW(
        makePattern(&sim, "single_target", 8, 0, R"({"target": 8})"),
        FatalError);
}

TEST(FixedPermutation, AllTerminalsAgreeOnOnePermutation)
{
    Simulator sim;
    const std::uint32_t n = 32;
    std::set<std::uint32_t> images;
    for (std::uint32_t t = 0; t < n; ++t) {
        auto p = makePattern(&sim, "fixed_permutation", n, t,
                             R"({"permutation_seed": 5})");
        images.insert(p->nextDestination());
    }
    EXPECT_EQ(images.size(), n);  // bijective
}

TEST(FixedPermutation, SeedChangesPermutation)
{
    Simulator sim;
    auto a = makePattern(&sim, "fixed_permutation", 64, 7,
                         R"({"permutation_seed": 1})");
    auto b = makePattern(&sim, "fixed_permutation", 64, 7,
                         R"({"permutation_seed": 2})");
    // Different seeds give (almost surely) different images somewhere;
    // compare full mapping via several terminals.
    int differences = 0;
    for (std::uint32_t t = 0; t < 64; ++t) {
        auto pa = makePattern(&sim, "fixed_permutation", 64, t,
                              R"({"permutation_seed": 1})");
        auto pb = makePattern(&sim, "fixed_permutation", 64, t,
                              R"({"permutation_seed": 2})");
        if (pa->nextDestination() != pb->nextDestination()) {
            ++differences;
        }
    }
    EXPECT_GT(differences, 32);
    (void)a;
    (void)b;
}


TEST(Hotspot, RespectsFractionAndRange)
{
    Simulator sim;
    auto p = makePattern(&sim, "hotspot", 16, 3,
                         R"({"hotspots": [0, 1],
                             "hotspot_fraction": 0.5})");
    int hot = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        std::uint32_t d = p->nextDestination();
        EXPECT_LT(d, 16u);
        if (d <= 1) {
            ++hot;
        }
    }
    // ~50% targeted + a sliver of background UR hitting 0/1 anyway.
    EXPECT_GT(hot, n / 2 - 300);
    EXPECT_LT(hot, n / 2 + 500);
}

TEST(Hotspot, InvalidSettingsAreFatal)
{
    Simulator sim;
    EXPECT_THROW(makePattern(&sim, "hotspot", 8, 0,
                             R"({"hotspots": []})"),
                 FatalError);
    EXPECT_THROW(makePattern(&sim, "hotspot", 8, 0,
                             R"({"hotspots": [9]})"),
                 FatalError);
    EXPECT_THROW(makePattern(&sim, "hotspot", 8, 0,
                             R"({"hotspots": [1],
                                 "hotspot_fraction": 1.5})"),
                 FatalError);
}

TEST(Shuffle, RotatesAddressLeft)
{
    Simulator sim;
    auto p = makePattern(&sim, "shuffle", 8, 3);  // 011 -> 110
    EXPECT_EQ(p->nextDestination(), 6u);
    auto q = makePattern(&sim, "shuffle", 8, 5);  // 101 -> 011
    EXPECT_EQ(q->nextDestination(), 3u);
    EXPECT_THROW(makePattern(&sim, "shuffle", 12, 0), FatalError);
}

/** Parameterized permutation property: the deterministic patterns are
 *  bijections over the terminal set. */
class PermutationPatternTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PermutationPatternTest, IsBijective)
{
    Simulator sim;
    const std::uint32_t n = 16;
    std::string settings = "{}";
    if (std::string(GetParam()) == "tornado") {
        settings = R"({"widths": [16], "concentration": 1})";
    }
    std::set<std::uint32_t> images;
    for (std::uint32_t t = 0; t < n; ++t) {
        auto p = makePattern(&sim, GetParam(), n, t, settings);
        images.insert(p->nextDestination());
    }
    EXPECT_EQ(images.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Deterministic, PermutationPatternTest,
                         ::testing::Values("bit_complement", "tornado",
                                           "transpose", "bit_reverse",
                                           "neighbor", "shuffle",
                                           "fixed_permutation"));

}  // namespace
}  // namespace ss
