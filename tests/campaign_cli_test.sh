#!/bin/sh
# End-to-end campaign test: run a tiny 2x2 sweep through sscampaign,
# SIGKILL it mid-flight, resume, and assert that previously-finished
# points are served from the cache (state=cached, attempts 0) with no
# recomputation, while the rest complete.
set -e

SSCAMPAIGN="$1"
SUPERSIM="$2"
CONFIG="$3"
WORK="${TMPDIR:-/tmp}/supersim_campaign_cli_$$"
SPEC="$WORK/campaign.json"
OUT="$WORK/out"
MANIFEST="$OUT/manifest.jsonl"

mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

cat > "$SPEC" <<EOF
{
  "name": "killresume",
  "config": "$CONFIG",
  "overrides": [
    "workload.applications.0.num_samples=uint=3000",
    "simulator.time_limit=uint=0"
  ],
  "variables": [
    {"name": "InjectionRate", "short_name": "IR",
     "values": ["0.05", "0.1"],
     "overrides": ["workload.applications.0.injection_rate=float={}"]},
    {"name": "NumVcs", "short_name": "VC",
     "values": ["2", "4"],
     "overrides": ["network.num_vcs=uint={}"]}
  ],
  "seeds": [42],
  "execution": {"workers": 1, "timeout_seconds": 120,
                "max_attempts": 2, "backoff_seconds": 0.1},
  "output": {"dir": "$OUT"}
}
EOF

# A malformed spec is a bad-spec error: exit 2.
set +e
"$SSCAMPAIGN" /nonexistent/campaign.json 2>/dev/null
[ $? -eq 2 ] || { echo "missing spec should exit 2"; exit 1; }
echo '{"name": "x"}' > "$WORK/bad.json"
"$SSCAMPAIGN" "$WORK/bad.json" 2>/dev/null
[ $? -eq 2 ] || { echo "invalid spec should exit 2"; exit 1; }
set -e

# Start the campaign, then SIGKILL it as soon as the manifest journals
# the first completed point — simulating a mid-flight crash.
"$SSCAMPAIGN" "$SPEC" --supersim="$SUPERSIM" \
    > "$WORK/run1.log" 2>&1 &
PID=$!
TRIES=0
while [ $TRIES -lt 600 ]; do
    if grep -q '"state":"completed"' "$MANIFEST" 2>/dev/null; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || break  # finished before we could kill
    TRIES=$((TRIES + 1))
    sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
sleep 0.5  # let any orphaned child drain

grep -q '"state":"completed"' "$MANIFEST" || {
    echo "no point completed before the kill:"; cat "$WORK/run1.log";
    exit 1;
}

# Resume: the second invocation must finish every point, serving the
# already-completed ones from the cache.
"$SSCAMPAIGN" "$SPEC" --supersim="$SUPERSIM" > "$WORK/run2.log" 2>&1 || {
    echo "resume run failed:"; cat "$WORK/run2.log"; exit 1;
}
grep -q '"resumed":true' "$MANIFEST" || {
    echo "resume run did not mark itself resumed"; exit 1;
}

CACHED=$(grep -c '"event":"point".*"state":"cached"' "$MANIFEST" || true)
[ "$CACHED" -ge 1 ] || {
    echo "expected >= 1 cached point after resume, got $CACHED"; exit 1;
}
# Cached points are served without running anything: attempts 0.
if grep '"state":"cached"' "$MANIFEST" | grep -qv '"attempts":0'; then
    echo "cached point with nonzero attempts:"; cat "$MANIFEST"; exit 1;
fi
# Nothing was recomputed: each point hash completes at most once.
DUPES=$(grep '"state":"completed"' "$MANIFEST" |
    sed 's/.*"hash":"\([0-9a-f]*\)".*/\1/' | sort | uniq -d)
[ -z "$DUPES" ] || {
    echo "points recomputed after resume: $DUPES"; exit 1;
}
# Across both runs, every one of the 4 points ended completed or cached.
COMPLETED=$(grep -c '"event":"point".*"state":"completed"' "$MANIFEST" \
    || true)
[ $((COMPLETED + CACHED)) -ge 4 ] || {
    echo "expected 4 points done, completed=$COMPLETED cached=$CACHED";
    cat "$MANIFEST"; exit 1;
}
grep -q '"event":"end"' "$MANIFEST" || {
    echo "manifest missing end record"; exit 1;
}

# The aggregated metrics table has one row per point.
ROWS=$(tail -n +2 "$OUT/table.csv" | wc -l)
[ "$ROWS" -eq 4 ] || {
    echo "expected 4 table rows, got $ROWS"; cat "$OUT/table.csv"; exit 1;
}

# A third run is a pure cache replay: all 4 points cached.
"$SSCAMPAIGN" "$SPEC" --supersim="$SUPERSIM" > "$WORK/run3.log" 2>&1
grep -q "cached: *4" "$WORK/run3.log" || {
    echo "warm rerun not fully cached:"; cat "$WORK/run3.log"; exit 1;
}

echo "campaign cli test ok"
