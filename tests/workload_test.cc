/** @file Workload FSM and application tests (paper §IV-A, Figure 4). */
#include <gtest/gtest.h>

#include "json/settings.h"
#include "sim/builder.h"
#include "test_util.h"
#include "tools/log_parser.h"

namespace ss {
namespace {

const char* kSmallTorus =
    R"({"topology": "torus", "widths": [4], "concentration": 1,
        "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
        "router": {"architecture": "input_queued",
                   "input_buffer_size": 8},
        "routing": {"algorithm": "torus_dimension_order"}})";

TEST(Workload, BlastQuotaSamplesExactCount)
{
    json::Value config =
        test::makeConfig(kSmallTorus, test::blastWorkload(0.2, 1, 25));
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    // num_samples per terminal times 4 terminals.
    EXPECT_EQ(result.sampler.count(), 100u);
}

TEST(Workload, SampleDurationMode)
{
    json::Value config = test::makeConfig(kSmallTorus, R"({
        "applications": [{
            "type": "blast", "injection_rate": 0.25,
            "message_size": 1, "sample_duration": 3000,
            "warmup_duration": 500,
            "traffic": {"type": "uniform_random"}}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    // ~0.25 flits/cycle * 4 terminals * 3000 cycles = ~3000 messages.
    EXPECT_GT(result.sampler.count(), 2000u);
    EXPECT_LT(result.sampler.count(), 4200u);
    // The measurement window is the generating phase.
    EXPECT_EQ(result.rateMonitor.windowTicks(), 3000u);
}

TEST(Workload, SamplingWindowBoundsInjectTimes)
{
    json::Value config = test::makeConfig(kSmallTorus, R"({
        "applications": [{
            "type": "blast", "injection_rate": 0.2,
            "message_size": 1, "num_samples": 30,
            "warmup_duration": 1000,
            "traffic": {"type": "uniform_random"}}]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    Tick start = simulation.workload()->generateStartTick();
    EXPECT_GE(start, 1000u);
    for (const auto& s : result.sampler.samples()) {
        EXPECT_GE(s.createTick, start);
    }
}

TEST(Workload, PhaseEndsInDraining)
{
    json::Value config =
        test::makeConfig(kSmallTorus, test::blastWorkload(0.2, 1, 10));
    Simulation simulation(config);
    simulation.run();
    EXPECT_EQ(simulation.workload()->phase(), Phase::kDraining);
    // Draining emptied the network: no in-flight messages remain.
    EXPECT_EQ(simulation.network()->messagesInFlight(), 0u);
}

TEST(Workload, PulseBurstDeliversAll)
{
    json::Value config = test::makeConfig(kSmallTorus, R"({
        "applications": [{
            "type": "pulse", "injection_rate": 0.5,
            "num_messages": 15, "message_size": 2,
            "traffic": {"type": "uniform_random"}}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 4u * 15u);
}

TEST(Workload, BlastPlusPulseTransient)
{
    // The paper's Figure 5 composition: Blast defines steady state and
    // Completes immediately; Pulse's burst defines the window.
    json::Value config = test::makeConfig(kSmallTorus, R"({
        "applications": [
          {"type": "blast", "injection_rate": 0.15, "message_size": 1,
           "warmup_duration": 800,
           "traffic": {"type": "uniform_random"}},
          {"type": "pulse", "injection_rate": 0.3, "num_messages": 20,
           "message_size": 1, "delay": 200,
           "traffic": {"type": "uniform_random"}}
        ]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    std::size_t blast = 0;
    std::size_t pulse = 0;
    for (const auto& s : result.sampler.samples()) {
        (s.app == 0 ? blast : pulse)++;
    }
    EXPECT_EQ(pulse, 4u * 20u);
    EXPECT_GT(blast, 0u);  // blast samples during the window too
}

TEST(Workload, MessageLogMatchesSampler)
{
    std::string log_path = testing::TempDir() + "workload_log.csv";
    json::Value config = test::makeConfig(kSmallTorus, strf(R"({
        "message_log": ")", log_path, R"(",
        "applications": [{
            "type": "blast", "injection_rate": 0.2,
            "message_size": 2, "num_samples": 10,
            "warmup_duration": 200,
            "traffic": {"type": "uniform_random"}}]})"));
    RunResult result = runSimulation(config);
    auto parsed = LogParser::parseFile(log_path);
    ASSERT_EQ(parsed.size(), result.sampler.count());
    // Spot-check a full row against the in-memory sample.
    EXPECT_EQ(parsed[0].id, result.sampler.samples()[0].id);
    EXPECT_EQ(parsed[0].deliverTick,
              result.sampler.samples()[0].deliverTick);
    EXPECT_EQ(parsed[0].flits, 2u);
}

TEST(Workload, ZeroRateBlastCompletesImmediately)
{
    json::Value config = test::makeConfig(kSmallTorus, R"({
        "applications": [{
            "type": "blast", "injection_rate": 0.0,
            "message_size": 1,
            "traffic": {"type": "uniform_random"}}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 0u);
}

TEST(Workload, ConfigurationErrorsAreFatal)
{
    // num_samples with zero rate can never finish: rejected up front.
    EXPECT_THROW(
        runSimulation(test::makeConfig(
            kSmallTorus, test::blastWorkload(0.0, 1, 5))),
        FatalError);
    // both completion modes at once
    EXPECT_THROW(runSimulation(test::makeConfig(kSmallTorus, R"({
        "applications": [{
            "type": "blast", "injection_rate": 0.1, "num_samples": 5,
            "sample_duration": 100,
            "traffic": {"type": "uniform_random"}}]})")),
                 FatalError);
    // empty application list
    EXPECT_THROW(runSimulation(test::makeConfig(
                     kSmallTorus, R"({"applications": []})")),
                 FatalError);
}

TEST(Workload, HopCountsAreExact)
{
    // Deterministic DOR on a ring: recorded hops must equal minimal.
    json::Value config =
        test::makeConfig(kSmallTorus, test::blastWorkload(0.1, 1, 20));
    RunResult result = runSimulation(config);
    for (const auto& s : result.sampler.samples()) {
        EXPECT_EQ(s.hops, s.minHops);
        EXPECT_FALSE(s.nonminimal);
    }
}

TEST(Workload, SaturationSetsFlag)
{
    // Offered load far beyond a single ring's capacity with a short time
    // limit: the run cannot drain and must report saturation.
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [8], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 4},
            "routing": {"algorithm": "torus_dimension_order"}})",
        test::blastWorkload(0.9, 4, 300), 1, 60000);
    RunResult result = runSimulation(config);
    EXPECT_TRUE(result.saturated);
}

}  // namespace
}  // namespace ss
