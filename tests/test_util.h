/**
 * @file
 * Shared helpers for the test suite: canned configurations for small
 * instances of each topology/router/workload combination.
 */
#ifndef SS_TESTS_TEST_UTIL_H_
#define SS_TESTS_TEST_UTIL_H_

#include <string>

#include "json/json.h"

namespace ss::test {

/**
 * Builds a complete runnable config from a compact spec.
 * @param network_json  contents of the "network" block (JSON text)
 * @param workload_json contents of the "workload" block (JSON text);
 *        empty uses a small uniform-random blast
 * @param seed          simulator seed
 * @param time_limit    tick cap (0 = none)
 */
json::Value makeConfig(const std::string& network_json,
                       const std::string& workload_json = "",
                       std::uint64_t seed = 1,
                       std::uint64_t time_limit = 2'000'000);

/** A small blast workload block with the given rate/size/samples. */
std::string blastWorkload(double rate, unsigned message_size,
                          unsigned num_samples,
                          const std::string& traffic_type =
                              "uniform_random");

}  // namespace ss::test

#endif  // SS_TESTS_TEST_UTIL_H_
