/** @file OQ/IOQ-specific microarchitecture tests: finite-queue
 *  stall/resume, packet contiguity through shared output queues, and
 *  output-queue draining. */
#include <gtest/gtest.h>

#include "json/settings.h"
#include "router/ioq_router.h"
#include "router/output_queued_router.h"
#include "sim/builder.h"
#include "test_util.h"

namespace ss {
namespace {

TEST(OqRouter, MultiFlitConvergecastKeepsPacketsContiguous)
{
    // Regression for packet interleaving in shared output queues: many
    // sources stream multi-flit packets through the same OQ outputs
    // toward one sink. Reassembly checks (§IV-D) panic on any
    // interleaving, so completing the run is the assertion.
    json::Value config = test::makeConfig(
        R"({"topology": "parking_lot", "length": 4, "concentration": 2,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
            "router": {"architecture": "output_queued",
                       "input_buffer_size": 16,
                       "output_buffer_size": 8,
                       "core_latency": 2},
            "routing": {"algorithm": "parking_lot"}})",
        R"({"applications": [{
            "type": "blast", "injection_rate": 0.1, "message_size": 5,
            "num_samples": 12, "warmup_duration": 500,
            "traffic": {"type": "single_target", "target": 0}}]})",
        1, 2000000);
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 8u * 12u);
}

TEST(OqRouter, FiniteQueueStallsAndResumes)
{
    // A finite 4-flit output queue against a high-rate convergecast:
    // inputs must stall when the queue fills and resume as it drains —
    // everything still delivers, just slower.
    json::Value config = test::makeConfig(
        R"({"topology": "parking_lot", "length": 3, "concentration": 2,
            "num_vcs": 1, "clock_period": 1, "channel_latency": 2,
            "router": {"architecture": "output_queued",
                       "input_buffer_size": 8,
                       "output_buffer_size": 4,
                       "core_latency": 1},
            "routing": {"algorithm": "parking_lot"}})",
        R"({"applications": [{
            "type": "pulse", "injection_rate": 1.0, "num_messages": 30,
            "message_size": 1,
            "traffic": {"type": "single_target", "target": 0}}]})",
        1, 2000000);
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 6u * 30u);
}

TEST(OqRouter, InfiniteQueuesAbsorbBursts)
{
    // With infinite output queues the same burst is absorbed without
    // stalls: latency reflects pure queueing delay at the drain rate.
    json::Value config = test::makeConfig(
        R"({"topology": "parking_lot", "length": 3, "concentration": 2,
            "num_vcs": 1, "clock_period": 1, "channel_latency": 2,
            "router": {"architecture": "output_queued",
                       "input_buffer_size": 64,
                       "output_buffer_size": 0,
                       "core_latency": 1},
            "routing": {"algorithm": "parking_lot"}})",
        R"({"applications": [{
            "type": "pulse", "injection_rate": 1.0, "num_messages": 30,
            "message_size": 1,
            "traffic": {"type": "single_target", "target": 0}}]})",
        1, 2000000);
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 6u * 30u);
    // All 180 flits drain through terminal 0's single ejection channel:
    // the last delivery cannot beat ~180 cycles of serialization.
    std::uint64_t last = 0;
    for (const auto& s : result.sampler.samples()) {
        last = std::max(last, s.deliverTick);
    }
    std::uint64_t first = ~0ULL;
    for (const auto& s : result.sampler.samples()) {
        first = std::min(first, s.injectTick);
    }
    EXPECT_GE(last - first, 150u);
}

TEST(IoqRouter, OutputQueueBuffersBetweenCrossbarAndChannel)
{
    // Instrument an IOQ router directly: after a short burst the output
    // queues must be empty again (fully drained to the channels).
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [2], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 4,
            "router": {"architecture": "input_output_queued",
                       "input_buffer_size": 8,
                       "output_buffer_size": 4,
                       "crossbar_latency": 1},
            "routing": {"algorithm": "torus_dimension_order"}})",
        R"({"applications": [{
            "type": "pulse", "injection_rate": 1.0, "num_messages": 20,
            "message_size": 2,
            "traffic": {"type": "neighbor"}}]})",
        1, 2000000);
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    auto* router =
        dynamic_cast<IoqRouter*>(simulation.network()->router(0));
    ASSERT_NE(router, nullptr);
    for (std::uint32_t p = 0; p < router->numPorts(); ++p) {
        for (std::uint32_t v = 0; v < router->numVcs(); ++v) {
            EXPECT_EQ(router->outputOccupancy(p, v), 0u);
            EXPECT_EQ(router->inputOccupancy(p, v), 0u);
        }
    }
}

TEST(IqRouter, InputBuffersEmptyAfterDrain)
{
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [3], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 4,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8,
                       "crossbar_latency": 1},
            "routing": {"algorithm": "torus_dimension_order"}})",
        test::blastWorkload(0.3, 2, 15));
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    for (std::uint32_t r = 0; r < 3; ++r) {
        auto* router = dynamic_cast<InputQueuedRouter*>(
            simulation.network()->router(r));
        ASSERT_NE(router, nullptr);
        for (std::uint32_t p = 0; p < router->numPorts(); ++p) {
            for (std::uint32_t v = 0; v < router->numVcs(); ++v) {
                EXPECT_EQ(router->inputOccupancy(p, v), 0u);
            }
        }
    }
}

TEST(IqRouter, CreditsRestoredAfterDrain)
{
    // Credit conservation end-to-end: after the network drains, every
    // downstream credit count must be back at its capacity.
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [3], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 4,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8,
                       "crossbar_latency": 1},
            "routing": {"algorithm": "torus_dimension_order"}})",
        test::blastWorkload(0.4, 1, 25));
    Simulation simulation(config);
    simulation.run();
    for (std::uint32_t r = 0; r < 3; ++r) {
        Router* router = simulation.network()->router(r);
        for (std::uint32_t p = 0; p < router->numPorts(); ++p) {
            if (!router->outputWired(p)) {
                continue;
            }
            for (std::uint32_t v = 0; v < router->numVcs(); ++v) {
                // Router-router ports carry 8-credit buffers; terminal
                // ports see the interface's ejection pool.
                EXPECT_GT(router->credits(p, v), 0u);
            }
        }
    }
}

}  // namespace
}  // namespace ss
