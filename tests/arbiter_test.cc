/** @file Arbiter policy tests, including parameterized properties shared
 *  by every policy. */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "arbiter/arbiter.h"
#include "core/simulator.h"

namespace ss {
namespace {

std::unique_ptr<Arbiter>
makeArbiter(Simulator* sim, const std::string& type, std::uint32_t size)
{
    static int counter = 0;
    return ArbiterFactory::instance().createUnique(
        type, sim, strf("arb_", type, "_", counter++), nullptr, size,
        json::Value::object());
}

// ----- properties every policy must satisfy -----

class ArbiterPolicyTest : public ::testing::TestWithParam<const char*> {
  protected:
    Simulator sim_;
};

TEST_P(ArbiterPolicyTest, NoRequestsYieldsNone)
{
    auto arb = makeArbiter(&sim_, GetParam(), 4);
    EXPECT_EQ(arb->arbitrate(), Arbiter::kNone);
}

TEST_P(ArbiterPolicyTest, SoleRequesterAlwaysWins)
{
    auto arb = makeArbiter(&sim_, GetParam(), 5);
    for (std::uint32_t client = 0; client < 5; ++client) {
        arb->request(client);
        std::uint32_t winner = arb->arbitrate();
        EXPECT_EQ(winner, client);
        arb->grant(winner);
    }
}

TEST_P(ArbiterPolicyTest, WinnerIsARequester)
{
    auto arb = makeArbiter(&sim_, GetParam(), 8);
    Random rng(7);
    for (int round = 0; round < 200; ++round) {
        std::set<std::uint32_t> requesters;
        for (std::uint32_t c = 0; c < 8; ++c) {
            if (rng.nextBool(0.4)) {
                arb->request(c, rng.nextU64(100));
                requesters.insert(c);
            }
        }
        std::uint32_t winner = arb->arbitrate();
        if (requesters.empty()) {
            EXPECT_EQ(winner, Arbiter::kNone);
        } else {
            EXPECT_TRUE(requesters.count(winner)) << "round " << round;
            arb->grant(winner);
        }
    }
}

TEST_P(ArbiterPolicyTest, ArbitrateClearsRequests)
{
    auto arb = makeArbiter(&sim_, GetParam(), 3);
    arb->request(1);
    arb->arbitrate();
    EXPECT_EQ(arb->numRequests(), 0u);
    EXPECT_EQ(arb->arbitrate(), Arbiter::kNone);
}

TEST_P(ArbiterPolicyTest, CancelRemovesRequest)
{
    auto arb = makeArbiter(&sim_, GetParam(), 3);
    arb->request(0);
    arb->request(2);
    arb->cancel(0);
    EXPECT_EQ(arb->arbitrate(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ArbiterPolicyTest,
                         ::testing::Values("round_robin", "age", "random",
                                           "lru", "fixed_priority"));

// ----- policy-specific behavior -----

TEST(RoundRobinArbiter, RotatesThroughContenders)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "round_robin", 4);
    std::vector<std::uint32_t> winners;
    for (int i = 0; i < 8; ++i) {
        for (std::uint32_t c = 0; c < 4; ++c) {
            arb->request(c);
        }
        std::uint32_t w = arb->arbitrate();
        arb->grant(w);
        winners.push_back(w);
    }
    // With all clients always requesting, grants cycle 0,1,2,3,0,1,...
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(winners[i], static_cast<std::uint32_t>(i % 4));
    }
}

TEST(RoundRobinArbiter, UngrantedWinDoesNotAdvancePriority)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "round_robin", 4);
    arb->request(0);
    EXPECT_EQ(arb->arbitrate(), 0u);  // no grant committed
    arb->request(0);
    arb->request(1);
    EXPECT_EQ(arb->arbitrate(), 0u);  // priority still at 0
}

TEST(AgeArbiter, OldestMetadataWins)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "age", 4);
    arb->request(0, 500);
    arb->request(1, 100);  // oldest (lowest timestamp)
    arb->request(2, 300);
    std::uint32_t w = arb->arbitrate();
    EXPECT_EQ(w, 1u);
}

TEST(AgeArbiter, TiesBrokenFairly)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "age", 3);
    std::set<std::uint32_t> winners;
    for (int i = 0; i < 3; ++i) {
        arb->request(0, 7);
        arb->request(1, 7);
        arb->request(2, 7);
        std::uint32_t w = arb->arbitrate();
        arb->grant(w);
        winners.insert(w);
    }
    EXPECT_EQ(winners.size(), 3u);  // round-robin tiebreak visits all
}

TEST(LruArbiter, LeastRecentlyGrantedWins)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "lru", 3);
    // Grant 0, then 1; next contest between 0,1 must pick 0? No — 2 is
    // least recent overall; between 0 and 1, 0 was granted longer ago.
    arb->request(0);
    arb->grant(arb->arbitrate());
    arb->request(1);
    arb->grant(arb->arbitrate());
    arb->request(0);
    arb->request(1);
    arb->request(2);
    EXPECT_EQ(arb->arbitrate(), 2u);  // never granted
    arb->grant(2);
    arb->request(0);
    arb->request(1);
    EXPECT_EQ(arb->arbitrate(), 0u);  // granted longest ago
}

TEST(FixedPriorityArbiter, LowestIndexAlwaysWins)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "fixed_priority", 4);
    for (int i = 0; i < 5; ++i) {
        arb->request(1);
        arb->request(3);
        std::uint32_t w = arb->arbitrate();
        EXPECT_EQ(w, 1u);
        arb->grant(w);
    }
}

TEST(RandomArbiter, AllContendersWinEventually)
{
    Simulator sim;
    auto arb = makeArbiter(&sim, "random", 4);
    std::vector<int> wins(4, 0);
    for (int i = 0; i < 2000; ++i) {
        for (std::uint32_t c = 0; c < 4; ++c) {
            arb->request(c);
        }
        std::uint32_t w = arb->arbitrate();
        arb->grant(w);
        ++wins[w];
    }
    for (int w : wins) {
        EXPECT_GT(w, 350);  // ~500 expected
        EXPECT_LT(w, 650);
    }
}

TEST(Arbiter, InvalidSizeIsFatal)
{
    Simulator sim;
    EXPECT_THROW(makeArbiter(&sim, "round_robin", 0), FatalError);
}

}  // namespace
}  // namespace ss
