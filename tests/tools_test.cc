/** @file Tooling tests: the SSParse/TaskRun/SSSweep equivalents. */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/logging.h"
#include "json/settings.h"
#include "stats/transaction_log.h"
#include "tools/log_parser.h"
#include "tools/series_writer.h"
#include "tools/sweeper.h"
#include "tools/task_runner.h"

namespace ss {
namespace {

std::string
sampleLogText()
{
    std::ostringstream out;
    out << TransactionLog::header() << '\n';
    // id,app,src,dst,create,inject,deliver,flits,packets,hops,minhops,nm
    out << "1,0,0,5,100,101,150,1,1,3,3,0\n";
    out << "2,0,1,6,200,210,300,4,1,5,3,1\n";
    out << "3,1,2,7,500,500,560,1,1,3,3,0\n";
    out << "4,1,3,0,900,950,1200,8,2,4,4,0\n";
    return out.str();
}

TEST(LogParser, ParsesRowsAndFields)
{
    auto samples = LogParser::parseText(sampleLogText());
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[1].id, 2u);
    EXPECT_EQ(samples[1].flits, 4u);
    EXPECT_TRUE(samples[1].nonminimal);
    EXPECT_EQ(samples[3].packets, 2u);
    EXPECT_EQ(samples[0].totalLatency(), 50u);
    EXPECT_EQ(samples[0].networkLatency(), 49u);
}

TEST(LogParser, RejectsBadInput)
{
    EXPECT_THROW(LogParser::parseText("not,a,header\n1,2\n"), FatalError);
    EXPECT_THROW(LogParser::parseText(""), FatalError);
    EXPECT_THROW(LogParser::parseText(
                     std::string(TransactionLog::header()) + "\n1,2,3\n"),
                 FatalError);
}

TEST(LogFilter, AppFilter)
{
    auto samples = LogParser::parseText(sampleLogText());
    auto filtered = LogParser::apply(samples, std::vector<std::string>{"+app=0"});
    ASSERT_EQ(filtered.size(), 2u);
    EXPECT_EQ(filtered[0].id, 1u);
    EXPECT_EQ(filtered[1].id, 2u);
}

TEST(LogFilter, SendRangeFilterMatchesPaperSyntax)
{
    // The paper's example: "+send=500-1000" keeps traffic sent in
    // [500, 1000].
    auto samples = LogParser::parseText(sampleLogText());
    auto filtered = LogParser::apply(samples, std::vector<std::string>{"+send=500-1000"});
    ASSERT_EQ(filtered.size(), 2u);
    EXPECT_EQ(filtered[0].id, 3u);
    EXPECT_EQ(filtered[1].id, 4u);
}

TEST(LogFilter, FiltersCompose)
{
    auto samples = LogParser::parseText(sampleLogText());
    auto filtered =
        LogParser::apply(samples, std::vector<std::string>{"+app=1", "+send=500-1000"});
    ASSERT_EQ(filtered.size(), 2u);
    filtered = LogParser::apply(samples, std::vector<std::string>{"+app=0", "+nonminimal=1"});
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].id, 2u);
}

TEST(LogFilter, SizeHopsSrcDst)
{
    auto samples = LogParser::parseText(sampleLogText());
    EXPECT_EQ(LogParser::apply(samples, std::vector<std::string>{"+size=4-8"}).size(), 2u);
    EXPECT_EQ(LogParser::apply(samples, std::vector<std::string>{"+hops=5"}).size(), 1u);
    EXPECT_EQ(LogParser::apply(samples, std::vector<std::string>{"+src=1"}).size(), 1u);
    EXPECT_EQ(LogParser::apply(samples, std::vector<std::string>{"+dst=0"}).size(), 1u);
    EXPECT_EQ(LogParser::apply(samples, std::vector<std::string>{"+recv=0-400"}).size(), 2u);
}

TEST(LogFilter, MalformedSpecsAreFatal)
{
    EXPECT_THROW(LogFilter::parse("app=0"), FatalError);       // no '+'
    EXPECT_THROW(LogFilter::parse("+app"), FatalError);        // no '='
    EXPECT_THROW(LogFilter::parse("+nope=1"), FatalError);     // field
    EXPECT_THROW(LogFilter::parse("+send=9-5"), FatalError);   // inverted
    EXPECT_THROW(LogFilter::parse("+app=x"), FatalError);      // number
}

TEST(SeriesWriter, WritesRowsAndSeries)
{
    std::ostringstream out;
    SeriesWriter writer(&out);
    writer.header({"a", "b"});
    writer.row({1.5, 2.0});
    writer.row("label", {3.0});
    EXPECT_EQ(out.str(), "a,b\n1.5,2\nlabel,3\n");
}

TEST(SeriesWriter, LoadLatencyTable)
{
    std::ostringstream out;
    SeriesWriter writer(&out);
    writer.loadLatencyHeader();
    writer.loadLatencyRow(0.5, Distribution({10.0, 20.0, 30.0}));
    std::string text = out.str();
    EXPECT_NE(text.find("load,mean,p50"), std::string::npos);
    EXPECT_NE(text.find("0.5,20,20"), std::string::npos);
}

TEST(TaskGraph, RunsDependenciesInOrder)
{
    TaskGraph graph;
    std::vector<int> order;
    std::mutex m;
    auto record = [&](int id) {
        return [&order, &m, id]() {
            std::lock_guard<std::mutex> lock(m);
            order.push_back(id);
            return true;
        };
    };
    graph.addTask("sim", record(1));
    graph.addTask("parse", record(2), {"sim"});
    graph.addTask("plot", record(3), {"parse"});
    EXPECT_TRUE(graph.run(2));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(graph.state("plot"), TaskState::kSucceeded);
}

TEST(TaskGraph, FailureSkipsDependentsOnly)
{
    TaskGraph graph;
    std::atomic<int> ran{0};
    graph.addTask("ok", [&]() { ++ran; return true; });
    graph.addTask("bad", []() { return false; });
    graph.addTask("child_of_bad", [&]() { ++ran; return true; },
                  {"bad"});
    graph.addTask("grandchild", [&]() { ++ran; return true; },
                  {"child_of_bad"});
    graph.addTask("child_of_ok", [&]() { ++ran; return true; }, {"ok"});
    EXPECT_FALSE(graph.run(2));
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(graph.state("bad"), TaskState::kFailed);
    EXPECT_EQ(graph.state("child_of_bad"), TaskState::kSkipped);
    EXPECT_EQ(graph.state("grandchild"), TaskState::kSkipped);
    EXPECT_EQ(graph.state("child_of_ok"), TaskState::kSucceeded);
    EXPECT_EQ(graph.tasksInState(TaskState::kSkipped).size(), 2u);
}

TEST(TaskGraph, ThrowingTaskCountsAsFailed)
{
    TaskGraph graph;
    graph.addTask("boom", []() -> bool {
        throw std::runtime_error("kapow");
    });
    EXPECT_FALSE(graph.run(1));
    EXPECT_EQ(graph.state("boom"), TaskState::kFailed);
}

TEST(TaskGraph, ResourceCapacityLimitsConcurrency)
{
    TaskGraph graph;
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 6; ++i) {
        graph.addTask(strf("task_", i), [&]() {
            int now = ++concurrent;
            int old = peak.load();
            while (now > old && !peak.compare_exchange_weak(old, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            --concurrent;
            return true;
        }, {}, 2);
    }
    // Capacity 2 with cost-2 tasks: strictly serial despite 4 threads.
    EXPECT_TRUE(graph.run(4, 2));
    EXPECT_EQ(peak.load(), 1);
}

TEST(TaskGraph, SharedTransitiveDependentsSkipExactlyOnce)
{
    // Diamond with a shared dependent: root fails, both branches and the
    // join (reachable twice) must end up skipped, counted once each.
    TaskGraph graph;
    std::atomic<int> ran{0};
    graph.addTask("root", []() { return false; });
    graph.addTask("left", [&]() { ++ran; return true; }, {"root"});
    graph.addTask("right", [&]() { ++ran; return true; }, {"root"});
    graph.addTask("join", [&]() { ++ran; return true; },
                  {"left", "right"});
    graph.addTask("tail", [&]() { ++ran; return true; }, {"join"});
    EXPECT_FALSE(graph.run(4));
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(graph.state("root"), TaskState::kFailed);
    EXPECT_EQ(graph.tasksInState(TaskState::kSkipped).size(), 4u);
    // A second run must behave identically (dependency counters reset).
    EXPECT_FALSE(graph.run(2));
    EXPECT_EQ(graph.tasksInState(TaskState::kSkipped).size(), 4u);
}

TEST(TaskGraph, OversizedTaskIsClampedToCapacity)
{
    // A task demanding more resources than the total capacity must still
    // run (clamped), not deadlock the executor.
    TaskGraph graph;
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    auto body = [&]() {
        int now = ++concurrent;
        int old = peak.load();
        while (now > old && !peak.compare_exchange_weak(old, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        --concurrent;
        return true;
    };
    graph.addTask("huge", body, {}, 100);
    graph.addTask("small_1", body, {}, 1);
    graph.addTask("small_2", body, {}, 1);
    EXPECT_TRUE(graph.run(4, 3));
    EXPECT_EQ(graph.state("huge"), TaskState::kSucceeded);
    // The clamped task occupies the full capacity while running.
    EXPECT_LE(peak.load(), 3);
}

TEST(TaskGraph, RetriesWithBackoffUntilSuccess)
{
    TaskGraph graph;
    std::atomic<int> calls{0};
    TaskOptions options;
    options.maxAttempts = 5;
    options.backoffSeconds = 0.005;
    graph.addTask(
        "flaky",
        [&](TaskContext& ctx) {
            EXPECT_EQ(ctx.attempt(), static_cast<std::uint32_t>(calls + 1));
            return ++calls >= 3;
        },
        options);
    EXPECT_TRUE(graph.run(2));
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(graph.state("flaky"), TaskState::kSucceeded);
    EXPECT_EQ(graph.attempts("flaky"), 3u);
}

TEST(TaskGraph, ExhaustedRetriesFailAndSkipDependents)
{
    TaskGraph graph;
    std::atomic<int> calls{0};
    TaskOptions options;
    options.maxAttempts = 3;
    graph.addTask(
        "doomed", [&](TaskContext&) { ++calls; return false; }, options);
    graph.addTask("dependent", []() { return true; }, {"doomed"});
    EXPECT_FALSE(graph.run(2));
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(graph.state("doomed"), TaskState::kFailed);
    EXPECT_EQ(graph.attempts("doomed"), 3u);
    EXPECT_EQ(graph.state("dependent"), TaskState::kSkipped);
}

TEST(TaskGraph, TimeoutFailsOverrunningAttempts)
{
    // The executor cannot preempt a std::function, but an attempt that
    // returns success after its deadline still counts as timed out, and
    // is retried like any other failure.
    TaskGraph graph;
    std::atomic<int> calls{0};
    TaskOptions options;
    options.maxAttempts = 2;
    options.timeoutSeconds = 0.02;
    graph.addTask(
        "slow",
        [&](TaskContext& ctx) {
            EXPECT_DOUBLE_EQ(ctx.timeoutSeconds(), 0.02);
            ++calls;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return true;
        },
        options);
    graph.addTask(
        "fast", [](TaskContext&) { return true; }, TaskOptions{});
    EXPECT_FALSE(graph.run(2));
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(graph.state("slow"), TaskState::kFailed);
    EXPECT_TRUE(graph.timedOut("slow"));
    EXPECT_EQ(graph.state("fast"), TaskState::kSucceeded);
    EXPECT_FALSE(graph.timedOut("fast"));
}

TEST(TaskGraph, CancelRetriesMakesFailurePermanent)
{
    TaskGraph graph;
    std::atomic<int> calls{0};
    TaskOptions options;
    options.maxAttempts = 5;
    graph.addTask(
        "permanent",
        [&](TaskContext& ctx) {
            ++calls;
            ctx.cancelRetries();  // e.g. a config error: retry is futile
            return false;
        },
        options);
    EXPECT_FALSE(graph.run(1));
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(graph.attempts("permanent"), 1u);
    EXPECT_EQ(graph.state("permanent"), TaskState::kFailed);
}

TEST(TaskGraph, UnknownDependencyIsFatal)
{
    TaskGraph graph;
    EXPECT_THROW(graph.addTask("x", []() { return true; }, {"ghost"}),
                 FatalError);
    graph.addTask("a", []() { return true; });
    EXPECT_THROW(graph.addTask("a", []() { return true; }), FatalError);
}

TEST(Sweeper, GeneratesCrossProduct)
{
    Sweeper sweeper;
    sweeper.addVariable("Latency", "CL", {"1", "8"},
                        [](const std::string& v) {
                            return std::vector<std::string>{
                                "network.channel_latency=uint=" + v};
                        });
    sweeper.addVariable("Size", "MS", {"1", "4", "16"},
                        [](const std::string& v) {
                            return std::vector<std::string>{
                                "workload.applications.0.message_size="
                                "uint=" + v};
                        });
    auto points = sweeper.generate();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].id, "CL-1_MS-1");
    EXPECT_EQ(points[5].id, "CL-8_MS-16");
    EXPECT_EQ(points[3].values.at("Latency"), "8");
    EXPECT_EQ(points[3].overrides.size(), 2u);
}

TEST(Sweeper, EmptySweepIsFatal)
{
    Sweeper sweeper;
    EXPECT_THROW(sweeper.generate(), FatalError);
}

TEST(Sweeper, RunAllCollectsMetrics)
{
    Sweeper sweeper;
    sweeper.addVariable("X", "X", {"2", "5"},
                        [](const std::string& v) {
                            return std::vector<std::string>{
                                "x=uint=" + v};
                        });
    json::Value base = json::parse(R"({"x": 0, "y": 7})");
    auto rows = sweeper.runAll(
        base,
        [](const json::Value& config, const SweepPoint& point) {
            EXPECT_FALSE(point.id.empty());
            std::map<std::string, double> metrics;
            metrics["x_plus_y"] =
                static_cast<double>(config.at("x").asUint() +
                                    config.at("y").asUint());
            return metrics;
        },
        2);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[0].second.at("x_plus_y"), 9.0);
    EXPECT_DOUBLE_EQ(rows[1].second.at("x_plus_y"), 12.0);

    std::string csv = Sweeper::toCsv(rows);
    EXPECT_NE(csv.find("X,x_plus_y"), std::string::npos);
    EXPECT_NE(csv.find("2,9"), std::string::npos);
    EXPECT_NE(csv.find("5,12"), std::string::npos);
}

}  // namespace
}  // namespace ss
