#!/usr/bin/env python3
"""Same-seed determinism gate for the supersim CLI.

Usage:
    determinism_check.py <supersim binary> <config.json>

Runs the config three times with observability fully on:
  - twice with the same seed: the RunResult JSON (minus wall-clock
    fields), the metrics series, and the Chrome trace must be
    byte-identical;
  - once with a different seed: the packet-level outcome must change,
    proving the comparison is sensitive to actual behavior and not
    vacuously passing.

Exits nonzero with a diagnostic on any mismatch.
"""

import json
import os
import subprocess
import sys
import tempfile

# Wall-clock engine fields legitimately differ between identical runs.
NONDETERMINISTIC_ENGINE_FIELDS = ("wall_seconds", "event_rate")
# Wall-clock-derived instruments; every simulation-time series must
# still match byte for byte.
NONDETERMINISTIC_INSTRUMENTS = (b"engine.events_per_sec",)


def strip_wall_clock_lines(data):
    return b"\n".join(
        line for line in data.split(b"\n")
        if not any(name in line for name in NONDETERMINISTIC_INSTRUMENTS))


def run(binary, config, seed, outdir, tag):
    result_path = os.path.join(outdir, f"{tag}_result.json")
    series_path = os.path.join(outdir, f"{tag}_series.csv")
    trace_path = os.path.join(outdir, f"{tag}_trace.json")
    subprocess.run(
        [binary, config,
         f"--json={result_path}",
         "observability.enabled=bool=true",
         f"observability.series_file=string={series_path}",
         f"observability.trace_file=string={trace_path}",
         f"simulator.seed=uint={seed}"],
        check=True, stdout=subprocess.DEVNULL)
    with open(result_path) as f:
        result = json.load(f)
    for field in NONDETERMINISTIC_ENGINE_FIELDS:
        result.get("engine", {}).pop(field, None)
    with open(series_path, "rb") as f:
        series = strip_wall_clock_lines(f.read())
    with open(trace_path, "rb") as f:
        trace = strip_wall_clock_lines(f.read())
    return result, series, trace


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    binary, config = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as outdir:
        res_a, series_a, trace_a = run(binary, config, 42, outdir, "a")
        res_b, series_b, trace_b = run(binary, config, 42, outdir, "b")
        res_c, _, _ = run(binary, config, 43, outdir, "c")

    failures = []
    if res_a != res_b:
        failures.append("same-seed RunResult JSON differs")
    if series_a != series_b:
        failures.append("same-seed metrics series differs")
    if trace_a != trace_b:
        failures.append("same-seed trace differs")

    # A different seed must visibly change packet-level behavior.
    fingerprint = ("events_executed", "throughput")
    if all(res_a.get(k) == res_c.get(k) for k in fingerprint):
        failures.append(
            "different seed produced identical events/throughput — "
            "the comparison is not sensitive")

    if failures:
        for failure in failures:
            print(f"determinism check FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"determinism check passed: "
          f"{res_a['events_executed']} events, seed 42 reproducible, "
          f"seed 43 diverges")


if __name__ == "__main__":
    main()
