#!/usr/bin/env python3
"""Same-seed determinism gate for the supersim CLI.

Usage:
    determinism_check.py <supersim binary> <config.json> [--threads-sweep]

Runs the config three times with observability and the power model
fully on (energy counters feed the series, the trace, and the result
JSON's "energy" block, so they are covered by every comparison below):
  - twice with the same seed: the RunResult JSON (minus wall-clock
    fields), the metrics series, and the Chrome trace must be
    byte-identical;
  - once with a different seed: the packet-level outcome must change,
    proving the comparison is sensitive to actual behavior and not
    vacuously passing.

With --threads-sweep it additionally runs the partitioned parallel
executer with --threads 1, 2, and 8 and requires every output to be
byte-identical to the --threads 1 run: thread count must never change
simulation results (the executer's headline guarantee).

Configs with a "fault" block get two extra checks:
  - the same-seed runs must carry a "resilience" block in the result
    JSON (the fault schedule executed);
  - a run with fault.enabled=bool=false must be byte-identical to a run
    with the block nulled out entirely (fault=json=null): the fault
    subsystem draws from its own RNG stream and pays zero overhead when
    disabled, so merely *having* a disabled block must not perturb
    traffic or arbiter randomness.

Exits nonzero with a diagnostic on any mismatch.
"""

import json
import os
import subprocess
import sys
import tempfile

# Wall-clock engine fields legitimately differ between identical runs.
NONDETERMINISTIC_ENGINE_FIELDS = ("wall_seconds", "event_rate")
# Wall-clock-derived instruments; every simulation-time series must
# still match byte for byte.
NONDETERMINISTIC_INSTRUMENTS = (b"engine.events_per_sec",)


def strip_wall_clock_lines(data):
    return b"\n".join(
        line for line in data.split(b"\n")
        if not any(name in line for name in NONDETERMINISTIC_INSTRUMENTS))


def run(binary, config, seed, outdir, tag, threads=None, extra=()):
    result_path = os.path.join(outdir, f"{tag}_result.json")
    series_path = os.path.join(outdir, f"{tag}_series.csv")
    trace_path = os.path.join(outdir, f"{tag}_trace.json")
    argv = [binary, config,
            f"--json={result_path}",
            "observability.enabled=bool=true",
            f"observability.series_file=string={series_path}",
            f"observability.trace_file=string={trace_path}",
            "power.enabled=bool=true",
            f"simulator.seed=uint={seed}"]
    argv.extend(extra)
    if threads is not None:
        argv.append(f"--threads={threads}")
    subprocess.run(argv, check=True, stdout=subprocess.DEVNULL)
    with open(result_path) as f:
        result = json.load(f)
    for field in NONDETERMINISTIC_ENGINE_FIELDS:
        result.get("engine", {}).pop(field, None)
    with open(series_path, "rb") as f:
        series = strip_wall_clock_lines(f.read())
    with open(trace_path, "rb") as f:
        trace = strip_wall_clock_lines(f.read())
    return result, series, trace


def main():
    argv = list(sys.argv[1:])
    threads_sweep = "--threads-sweep" in argv
    if threads_sweep:
        argv.remove("--threads-sweep")
    if len(argv) != 2:
        sys.exit(__doc__)
    binary, config = argv

    # JSONC configs: probe the raw text for a fault block rather than
    # parsing (comments and trailing commas are allowed in configs).
    with open(config) as f:
        has_fault_block = '"fault"' in f.read()

    failures = []
    with tempfile.TemporaryDirectory() as outdir:
        res_a, series_a, trace_a = run(binary, config, 42, outdir, "a")
        res_b, series_b, trace_b = run(binary, config, 42, outdir, "b")
        res_c, series_c, trace_c = run(binary, config, 43, outdir, "c")
        if has_fault_block:
            if "resilience" not in res_a:
                failures.append(
                    "config has a fault block but the RunResult JSON "
                    "has no 'resilience' block")
            disabled = run(binary, config, 42, outdir, "fault_off",
                           extra=("fault.enabled=bool=false",))
            absent = run(binary, config, 42, outdir, "fault_absent",
                         extra=("fault=json=null",))
            for kind, want, got in zip(
                    ("RunResult JSON", "metrics series", "trace"),
                    absent, disabled):
                if want != got:
                    failures.append(
                        f"fault.enabled=false {kind} differs from a run "
                        f"with no fault block — the disabled fault "
                        f"subsystem perturbs the simulation")
        if threads_sweep:
            base = run(binary, config, 42, outdir, "t1", threads=1)
            for threads in (2, 8):
                sweep = run(binary, config, 42, outdir,
                            f"t{threads}", threads=threads)
                for kind, want, got in zip(
                        ("RunResult JSON", "metrics series", "trace"),
                        base, sweep):
                    if want != got:
                        failures.append(
                            f"--threads {threads} {kind} differs from "
                            f"--threads 1")

    if "energy" not in res_a:
        failures.append(
            "power.enabled=true but RunResult JSON has no 'energy' block")
    if res_a != res_b:
        failures.append("same-seed RunResult JSON differs")
    if series_a != series_b:
        failures.append("same-seed metrics series differs")
    if trace_a != trace_b:
        failures.append("same-seed trace differs")

    # A different seed must visibly change *some* output, or the
    # comparison above is vacuous. Closed-loop collective workloads can
    # legitimately deliver identical event counts and throughput across
    # seeds (their traffic is fully demand-driven), but seed-dependent
    # tie-breaks still show up in the trace's per-packet VC choices — so
    # compare every artifact, not just the headline numbers.
    if res_a == res_c and series_a == series_c and trace_a == trace_c:
        failures.append(
            "different seed produced byte-identical result JSON, series, "
            "and trace — the comparison is not sensitive")

    if failures:
        for failure in failures:
            print(f"determinism check FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"determinism check passed: "
          f"{res_a['events_executed']} events, seed 42 reproducible, "
          f"seed 43 diverges")


if __name__ == "__main__":
    main()
