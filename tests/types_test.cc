/** @file Flit/Packet/Message structure tests. */
#include <gtest/gtest.h>

#include "core/logging.h"
#include "types/message.h"

namespace ss {
namespace {

TEST(Types, SingleFlitMessage)
{
    Message msg(1, 0, 2, 3, 1, 64);
    EXPECT_EQ(msg.numPackets(), 1u);
    EXPECT_EQ(msg.totalFlits(), 1u);
    Flit* flit = msg.packet(0)->flit(0);
    EXPECT_TRUE(flit->isHead());
    EXPECT_TRUE(flit->isTail());
    EXPECT_EQ(flit->packet()->message(), &msg);
}

TEST(Types, PacketizationSplitsAtMaxSize)
{
    Message msg(1, 0, 0, 1, 10, 4);  // 10 flits, max packet 4
    ASSERT_EQ(msg.numPackets(), 3u);
    EXPECT_EQ(msg.packet(0)->numFlits(), 4u);
    EXPECT_EQ(msg.packet(1)->numFlits(), 4u);
    EXPECT_EQ(msg.packet(2)->numFlits(), 2u);
    EXPECT_EQ(msg.totalFlits(), 10u);
}

TEST(Types, HeadTailFlags)
{
    Message msg(1, 0, 0, 1, 3, 8);
    Packet* pkt = msg.packet(0);
    EXPECT_TRUE(pkt->flit(0)->isHead());
    EXPECT_FALSE(pkt->flit(0)->isTail());
    EXPECT_FALSE(pkt->flit(1)->isHead());
    EXPECT_FALSE(pkt->flit(1)->isTail());
    EXPECT_TRUE(pkt->flit(2)->isTail());
    EXPECT_EQ(pkt->headFlit(), pkt->flit(0));
    EXPECT_EQ(pkt->tailFlit(), pkt->flit(2));
}

TEST(Types, InOrderReceiveCompletesPacket)
{
    Message msg(1, 0, 0, 1, 3, 8);
    Packet* pkt = msg.packet(0);
    EXPECT_FALSE(pkt->receiveFlit(pkt->flit(0)));
    EXPECT_FALSE(pkt->receiveFlit(pkt->flit(1)));
    EXPECT_TRUE(pkt->receiveFlit(pkt->flit(2)));
    EXPECT_EQ(pkt->receivedFlits(), 3u);
}

TEST(Types, MessageCompletesWhenAllPacketsArrive)
{
    Message msg(1, 0, 0, 1, 6, 3);
    ASSERT_EQ(msg.numPackets(), 2u);
    EXPECT_FALSE(msg.receivePacket(msg.packet(0)));
    EXPECT_TRUE(msg.receivePacket(msg.packet(1)));
}

TEST(Types, RoutingStateDefaults)
{
    Message msg(1, 0, 0, 1, 1, 8);
    Packet* pkt = msg.packet(0);
    EXPECT_EQ(pkt->routingPhase(), 0u);
    EXPECT_EQ(pkt->intermediate(), Packet::kNoIntermediate);
    EXPECT_EQ(pkt->vcClass(), 0u);
    EXPECT_FALSE(pkt->tookNonminimal());
    EXPECT_EQ(pkt->hopCount(), 0u);
    pkt->setTookNonminimal();
    EXPECT_TRUE(msg.tookNonminimal());
}

TEST(Types, MaxHopCountOverPackets)
{
    Message msg(1, 0, 0, 1, 6, 3);
    msg.packet(0)->incrementHopCount();
    msg.packet(1)->incrementHopCount();
    msg.packet(1)->incrementHopCount();
    EXPECT_EQ(msg.maxHopCount(), 2u);
}

using TypesDeathTest = ::testing::Test;

TEST(TypesDeathTest, OutOfOrderFlitPanics)
{
    Message msg(1, 0, 0, 1, 3, 8);
    Packet* pkt = msg.packet(0);
    // §IV-D: flits must arrive in order within a packet.
    EXPECT_DEATH(pkt->receiveFlit(pkt->flit(1)), "out of order");
}

TEST(TypesDeathTest, WrongPacketFlitPanics)
{
    Message msg(1, 0, 0, 1, 6, 3);
    EXPECT_DEATH(msg.packet(0)->receiveFlit(msg.packet(1)->flit(0)),
                 "wrong packet");
}

TEST(Types, InvalidConstructionIsFatal)
{
    EXPECT_THROW(Message(1, 0, 0, 1, 0, 8), FatalError);
    EXPECT_THROW(Message(1, 0, 0, 1, 4, 0), FatalError);
}

}  // namespace
}  // namespace ss
