/** @file DES core tests: time, clocks, event queue, components. */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/component.h"
#include "core/simulator.h"
#include "core/time.h"
#include "rng/random.h"

namespace ss {
namespace {

TEST(Time, LexicographicOrdering)
{
    EXPECT_LT(Time(1, 5), Time(2, 0));  // lower tick always wins
    EXPECT_LT(Time(2, 0), Time(2, 1));  // epsilon breaks ties
    EXPECT_EQ(Time(3, 1), Time(3, 1));
    EXPECT_GT(Time::invalid(), Time(~0ULL - 1, 0));
}

TEST(Time, Arithmetic)
{
    Time t(10, 3);
    EXPECT_EQ(t.plusTicks(5), Time(15, 0));  // epsilon resets
    EXPECT_EQ(t.plusEps(), Time(10, 4));
    EXPECT_EQ(t.withEps(7), Time(10, 7));
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(Time::invalid().valid());
}

TEST(Clock, EdgesAndCycles)
{
    Clock clock(3);  // 3-tick cycle time (paper Figure 2b, Clock A)
    EXPECT_EQ(clock.nextEdge(0), 0u);
    EXPECT_EQ(clock.nextEdge(1), 3u);
    EXPECT_EQ(clock.nextEdge(3), 3u);
    EXPECT_EQ(clock.nextEdge(4), 6u);
    EXPECT_EQ(clock.cycle(0), 0u);
    EXPECT_EQ(clock.cycle(5), 1u);
    EXPECT_EQ(clock.cycle(6), 2u);
    EXPECT_TRUE(clock.onEdge(6));
    EXPECT_FALSE(clock.onEdge(7));
    EXPECT_EQ(clock.futureEdge(4, 2), 12u);
}

TEST(Clock, PhaseOffset)
{
    Clock clock(4, 1);
    EXPECT_EQ(clock.nextEdge(0), 1u);
    EXPECT_EQ(clock.nextEdge(1), 1u);
    EXPECT_EQ(clock.nextEdge(2), 5u);
    EXPECT_TRUE(clock.onEdge(9));
}

TEST(Clock, TwoFrequencies)
{
    // The paper's Figure 2b: Clock A period 3, Clock B period 2 — they
    // align every 6 ticks.
    Clock a(3);
    Clock b(2);
    EXPECT_EQ(a.nextEdge(5), 6u);
    EXPECT_EQ(b.nextEdge(5), 6u);
    EXPECT_EQ(a.cycle(6), b.cycle(6) * 2 / 3);
}

TEST(Clock, InvalidParametersAreFatal)
{
    EXPECT_THROW(Clock(0), FatalError);
    EXPECT_THROW(Clock(4, 4), FatalError);
}

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(Time(30), [&]() { order.push_back(3); });
    sim.schedule(Time(10), [&]() { order.push_back(1); });
    sim.schedule(Time(20), [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.eventsExecuted(), 3u);
}

TEST(Simulator, EpsilonOrdersWithinTick)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(Time(5, 2), [&]() { order.push_back(2); });
    sim.schedule(Time(5, 0), [&]() { order.push_back(0); });
    sim.schedule(Time(5, 1), [&]() { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, FifoAmongEqualTimes)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(Time(1, 0), [&order, i]() { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(Simulator, EventsSpawnEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 100) {
            sim.schedule(sim.now().plusTicks(1), chain);
        }
    };
    sim.schedule(Time(0), chain);
    sim.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(sim.now().tick, 99u);
}

TEST(Simulator, EndsWhenQueueEmpty)
{
    Simulator sim;
    EXPECT_EQ(sim.run(), 0u);
    sim.schedule(Time(1), []() {});
    EXPECT_EQ(sim.run(), 1u);
    EXPECT_EQ(sim.eventsPending(), 0u);
}

TEST(Simulator, TimeLimitStopsExecution)
{
    Simulator sim;
    int executed = 0;
    for (Tick t = 0; t < 100; ++t) {
        sim.schedule(Time(t * 10), [&]() { ++executed; });
    }
    sim.setTimeLimit(500);
    sim.run();
    EXPECT_TRUE(sim.timeLimitHit());
    EXPECT_EQ(executed, 51);  // events at ticks 0..500
}

TEST(Simulator, CallerOwnedEventReschedulable)
{
    Simulator sim;
    struct Counter : Event {
        int n = 0;
        Simulator* sim;
        void
        process() override
        {
            if (++n < 5) {
                sim->schedule(this, sim->now().plusTicks(2));
            }
        }
    } ev;
    ev.sim = &sim;
    sim.schedule(&ev, Time(0));
    EXPECT_TRUE(ev.pending());
    sim.run();
    EXPECT_EQ(ev.n, 5);
    EXPECT_FALSE(ev.pending());
    EXPECT_EQ(sim.now().tick, 8u);
}

TEST(Simulator, MemberEventDispatches)
{
    struct Obj {
        int hits = 0;
        void fire() { ++hits; }
    } obj;
    Simulator sim;
    MemberEvent<Obj> ev(&obj, &Obj::fire);
    sim.schedule(&ev, Time(3));
    sim.run();
    EXPECT_EQ(obj.hits, 1);
}

TEST(Simulator, CrossEpsilonOrderAcrossOverflowBoundary)
{
    Simulator sim;
    sim.setSchedulerHorizon(4);  // tick 100 starts beyond the window
    std::vector<int> order;
    // Scheduled first (lowest sequence numbers) but far beyond the
    // horizon: these land in the overflow heap.
    sim.schedule(Time(100, 1), [&]() { order.push_back(10); });
    sim.schedule(Time(100, 0), [&]() { order.push_back(0); });
    // By tick 98 the window has advanced enough that tick 100 is
    // bucketable, so these same-tick schedules go directly into the
    // bucket — with higher sequence numbers than the overflow entries
    // that migrate in afterwards.
    sim.schedule(Time(98), [&]() {
        sim.schedule(Time(100, 1), [&]() { order.push_back(11); });
        sim.schedule(Time(100, 0), [&]() { order.push_back(1); });
    });
    sim.run();
    // Exact (tick, epsilon, sequence) order despite the two populations
    // merging at migration time.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

TEST(Simulator, MatchesReferenceTotalOrderUnderStress)
{
    Simulator sim;
    sim.setSchedulerHorizon(8);  // force heavy overflow traffic
    Random rng(123);
    struct Ref {
        Tick tick;
        Epsilon eps;
        std::size_t seq;
    };
    std::vector<Ref> refs;
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < 2000; ++i) {
        Tick tick = 1 + rng.nextU64(300);
        Epsilon e = static_cast<Epsilon>(rng.nextU64(8));
        refs.push_back({tick, e, i});
        sim.schedule(Time(tick, e),
                     [&order, i]() { order.push_back(i); });
    }
    sim.run();
    std::vector<Ref> expected = refs;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Ref& a, const Ref& b) {
                         return a.tick != b.tick ? a.tick < b.tick
                                                 : a.eps < b.eps;
                     });
    ASSERT_EQ(order.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(order[i], expected[i].seq) << "at position " << i;
    }
}

TEST(Simulator, PooledWrappersAreRecycled)
{
    Simulator sim;
    int runs = 0;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 100; ++i) {
            sim.schedule(Time(round * 10 + 1), [&]() { ++runs; });
        }
        sim.run();
    }
    EXPECT_EQ(runs, 300);
    // Rounds two and three reuse round one's wrapper events.
    EXPECT_LE(sim.pooledEventsAllocated() + sim.callbackEventsAllocated(),
              100u);
}

TEST(Simulator, NonTrivialClosuresFallBackToCallbackPool)
{
    Simulator sim;
    std::string tag = "payload with a non-trivially-copyable capture";
    std::string got;
    sim.schedule(Time(1), [&got, tag]() { got = tag; });
    sim.run();
    EXPECT_EQ(got, tag);
    EXPECT_EQ(sim.callbackEventsAllocated(), 1u);
    EXPECT_EQ(sim.pooledEventsAllocated(), 0u);
}

TEST(Simulator, CancelledEventDoesNotFireAndCanReschedule)
{
    Simulator sim;
    struct Obj {
        int hits = 0;
        void fire() { ++hits; }
    } obj;
    InlineEvent<Obj> ev(&obj, &Obj::fire);
    sim.schedule(&ev, Time(5));
    EXPECT_TRUE(ev.pending());
    EXPECT_TRUE(sim.cancel(&ev));
    EXPECT_FALSE(ev.pending());
    EXPECT_FALSE(sim.cancel(&ev));  // already cancelled
    // Reschedule into the same tick: the stale queue slot must neither
    // fire nor block the new occurrence.
    sim.schedule(&ev, Time(5));
    sim.schedule(Time(9), []() {});
    sim.run();
    EXPECT_EQ(obj.hits, 1);
    EXPECT_EQ(sim.eventsPending(), 0u);
}

TEST(Simulator, BackgroundEventsDoNotKeepRunAlive)
{
    Simulator sim;
    struct Sampler {
        Simulator* sim;
        int samples = 0;
        InlineEvent<Sampler> ev;
        explicit Sampler(Simulator* s)
            : sim(s), ev(this, &Sampler::sample)
        {
        }
        void
        sample()
        {
            ++samples;
            sim->schedule(&ev, sim->now().plusTicks(10),
                          /*background=*/true);
        }
    } sampler(&sim);
    sim.schedule(&sampler.ev, Time(0), /*background=*/true);
    int fg = 0;
    sim.schedule(Time(25), [&]() { ++fg; });
    sim.run();
    // Samples at ticks 0, 10, 20 interleave with foreground work, but
    // the tick-30 sample stays queued: background events never keep the
    // simulation alive on their own.
    EXPECT_EQ(fg, 1);
    EXPECT_EQ(sampler.samples, 3);
    EXPECT_EQ(sim.eventsPending(), 1u);
    // New foreground work revives the run and drains past it.
    sim.schedule(Time(35), [&]() { ++fg; });
    sim.run();
    EXPECT_EQ(sampler.samples, 4);
    EXPECT_EQ(fg, 2);
}

TEST(Simulator, ScheduleInlineDeliversPayloads)
{
    struct Obj {
        Simulator* sim = nullptr;
        std::vector<int> got;
        void
        take(int v)
        {
            got.push_back(v);
            if (v < 3) {
                sim->scheduleInline<&Obj::take>(
                    this, v + 1, sim->now().plusTicks(1));
            }
        }
    } obj;
    Simulator sim;
    obj.sim = &sim;
    sim.scheduleInline<&Obj::take>(&obj, 0, Time(1));
    sim.run();
    EXPECT_EQ(obj.got, (std::vector<int>{0, 1, 2, 3}));
    // The chain reuses one pooled wrapper (plus at most one in flight).
    EXPECT_LE(sim.pooledEventsAllocated(), 2u);
}

TEST(Simulator, InlineEventCarriesPayload)
{
    struct Obj {
        std::vector<std::uint32_t> got;
        void take(std::uint32_t v) { got.push_back(v); }
    } obj;
    Simulator sim;
    InlineEvent<Obj, std::uint32_t> ev;
    ev.bind(&obj, &Obj::take, 7);
    sim.schedule(&ev, Time(1));
    sim.run();
    EXPECT_EQ(obj.got, (std::vector<std::uint32_t>{7}));
}

TEST(Simulator, HorizonValidation)
{
    Simulator sim;
    EXPECT_THROW(sim.setSchedulerHorizon(3), FatalError);  // not a pow2
    sim.setSchedulerHorizon(8);
    EXPECT_EQ(sim.schedulerHorizon(), 8u);
    sim.schedule(Time(1), []() {});
    EXPECT_THROW(sim.setSchedulerHorizon(16), FatalError);  // queue busy
    sim.run();
    sim.setSchedulerHorizon(16);
    EXPECT_EQ(sim.schedulerHorizon(), 16u);
}

TEST(Simulator, EpsilonBeyondSupportedRangeIsFatal)
{
    Simulator sim;
    EXPECT_THROW(sim.schedule(Time(1, 8), []() {}), FatalError);
}

TEST(Component, HierarchicalNames)
{
    Simulator sim;
    Component root(&sim, "network", nullptr);
    Component child(&sim, "router_3", &root);
    Component grandchild(&sim, "input_0", &child);
    EXPECT_EQ(grandchild.fullName(), "network.router_3.input_0");
    EXPECT_EQ(sim.findComponent("network.router_3"), &child);
    EXPECT_EQ(sim.numComponents(), 3u);
}

TEST(Component, DuplicateNamesAreFatal)
{
    Simulator sim;
    Component a(&sim, "x", nullptr);
    EXPECT_THROW(Component(&sim, "x", nullptr), FatalError);
}

TEST(Component, SeedsAreStableAndDistinct)
{
    Simulator sim_a(7);
    Simulator sim_b(7);
    Simulator sim_c(8);
    EXPECT_EQ(sim_a.componentSeed("net.r0"), sim_b.componentSeed("net.r0"));
    EXPECT_NE(sim_a.componentSeed("net.r0"), sim_a.componentSeed("net.r1"));
    EXPECT_NE(sim_a.componentSeed("net.r0"), sim_c.componentSeed("net.r0"));
}

TEST(Component, RandomStreamsAreIndependentOfCreationOrder)
{
    Simulator sim_a(3);
    Component a1(&sim_a, "alpha", nullptr);
    Component a2(&sim_a, "beta", nullptr);
    std::uint64_t v = a2.random().nextU64();

    Simulator sim_b(3);
    Component b2(&sim_b, "beta", nullptr);  // created first this time
    Component b1(&sim_b, "alpha", nullptr);
    EXPECT_EQ(b2.random().nextU64(), v);
}

}  // namespace
}  // namespace ss
