/** @file Stencil motif application tests: dependency-driven halo
 *  exchange over the network. */
#include <gtest/gtest.h>

#include "json/settings.h"
#include "sim/builder.h"
#include "test_util.h"
#include "workload/stencil.h"

namespace ss {
namespace {

const char* kNet =
    R"({"topology": "torus", "widths": [4, 2], "concentration": 1,
        "num_vcs": 2, "clock_period": 1, "channel_latency": 4,
        "router": {"architecture": "input_queued",
                   "input_buffer_size": 8},
        "routing": {"algorithm": "torus_dimension_order"}})";

TEST(Stencil, RunsAllIterations)
{
    // 4x2 logical grid on the 4x2 torus: neighbors = +/-1 in dim 0
    // (2 halos) and the single width-2 partner in dim 1 (1 halo) =
    // 3 messages per terminal per iteration.
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [{
            "type": "stencil", "widths": [4, 2], "iterations": 10,
            "message_size": 2, "compute_time": 20}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 8u * 3u * 10u);
}

TEST(Stencil, IterationsAreBulkSynchronous)
{
    // With one slow dependency chain, elapsed time per iteration is at
    // least the longest halo round trip plus compute time.
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [{
            "type": "stencil", "widths": [4, 2], "iterations": 5,
            "message_size": 1, "compute_time": 100}]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    auto* app = dynamic_cast<StencilApplication*>(
        simulation.workload()->application(0));
    ASSERT_NE(app, nullptr);
    // 5 iterations x (compute 100 + at least one network round trip).
    EXPECT_GE(app->elapsedTicks(), 5u * 100u);
    // And not absurdly long: each exchange is a handful of hops.
    EXPECT_LE(app->elapsedTicks(), 5u * 400u);
}

TEST(Stencil, ComposesWithBackgroundTraffic)
{
    // Background load slows the halo exchange down — the closed-loop
    // motif measures interference where open-loop Blast cannot.
    auto elapsed = [](double background_rate) {
        json::Value config = test::makeConfig(kNet, strf(R"({
            "applications": [
              {"type": "stencil", "widths": [4, 2], "iterations": 8,
               "message_size": 4, "compute_time": 0},
              {"type": "blast", "injection_rate": )", background_rate,
                R"(, "message_size": 4,
               "traffic": {"type": "uniform_random"}}
            ]})"));
        Simulation simulation(config);
        RunResult result = simulation.run();
        auto* app = dynamic_cast<StencilApplication*>(
            simulation.workload()->application(0));
        return app->elapsedTicks();
    };
    Tick quiet = elapsed(0.0);
    Tick busy = elapsed(0.7);
    EXPECT_GT(busy, quiet);
}

TEST(Stencil, GridMismatchIsFatal)
{
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{
            "type": "stencil", "widths": [3, 2], "iterations": 1}]})")),
                 FatalError);
}

TEST(Stencil, SingleCellGridFinishesWithoutTraffic)
{
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [1], "concentration": 1,
            "num_vcs": 2, "clock_period": 1, "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 8},
            "routing": {"algorithm": "torus_dimension_order"}})",
        R"({"applications": [{
            "type": "stencil", "widths": [1], "iterations": 3}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 0u);  // no neighbors, no halos
}

}  // namespace
}  // namespace ss
