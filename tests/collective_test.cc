/** @file Collective engine tests: DAG mechanics, algorithm-generator
 *  structure, end-to-end runs, determinism, and composition. */
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <utility>

#include "collective/algorithms.h"
#include "collective/collective.h"
#include "collective/dag.h"
#include "json/settings.h"
#include "sim/builder.h"
#include "test_util.h"
#include "tools/collective_parser.h"

namespace ss {
namespace {

const char* kNet =
    R"({"topology": "torus", "widths": [4], "concentration": 1,
        "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
        "router": {"architecture": "input_queued",
                   "input_buffer_size": 8},
        "routing": {"algorithm": "torus_dimension_order"}})";

const char* kNet6 =
    R"({"topology": "torus", "widths": [6], "concentration": 1,
        "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
        "router": {"architecture": "input_queued",
                   "input_buffer_size": 8},
        "routing": {"algorithm": "torus_dimension_order"}})";

CollectiveSpec
makeSpec(const std::string& op, const std::string& algorithm,
         std::uint64_t payload_bytes, std::uint32_t root = 0)
{
    CollectiveSpec spec;
    spec.name = op;
    spec.op = op;
    spec.algorithm = algorithm;
    spec.payloadBytes = payload_bytes;
    spec.root = root;
    return spec;
}

TEST(CollectiveDag, EligibilityPropagation)
{
    // Diamond: compute -> {send, recv} -> compute.
    CollectiveDag dag;
    std::uint32_t top = dag.addCompute(5);
    std::uint32_t send = dag.addSend(1, 4);
    std::uint32_t recv = dag.addRecv(2, 4);
    std::uint32_t bottom = dag.addCompute(0);
    dag.addDependency(top, send);
    dag.addDependency(top, recv);
    dag.addDependency(send, bottom);
    dag.addDependency(recv, bottom);

    std::vector<std::uint32_t> eligible;
    dag.start(&eligible);
    ASSERT_EQ(eligible, std::vector<std::uint32_t>{top});
    eligible.clear();

    dag.retire(top, &eligible);
    ASSERT_EQ(eligible, (std::vector<std::uint32_t>{send, recv}));
    eligible.clear();

    dag.retire(send, &eligible);
    EXPECT_TRUE(eligible.empty());
    dag.retire(recv, &eligible);
    ASSERT_EQ(eligible, std::vector<std::uint32_t>{bottom});
    EXPECT_FALSE(dag.done());
    eligible.clear();
    dag.retire(bottom, &eligible);
    EXPECT_TRUE(dag.done());
    EXPECT_EQ(dag.numRetired(), 4u);
}

TEST(CollectiveDag, StructureQueries)
{
    CollectiveDag dag;
    dag.addSend(1, 3);
    dag.addSend(2, 5);
    dag.addRecv(1, 3);
    dag.addCompute(7);
    EXPECT_EQ(dag.count(DagNodeKind::kSend), 2u);
    EXPECT_EQ(dag.count(DagNodeKind::kRecv), 1u);
    EXPECT_EQ(dag.count(DagNodeKind::kCompute), 1u);
    EXPECT_EQ(dag.totalSendFlits(), 8u);
    EXPECT_EQ(dag.node(1).peer, 2u);
    EXPECT_EQ(dag.node(3).duration, 7u);
}

TEST(CollectiveAlgorithms, BytesToFlits)
{
    EXPECT_EQ(bytesToFlits(0, 16), 1u);
    EXPECT_EQ(bytesToFlits(1, 16), 1u);
    EXPECT_EQ(bytesToFlits(16, 16), 1u);
    EXPECT_EQ(bytesToFlits(17, 16), 2u);
    EXPECT_EQ(bytesToFlits(1024, 16), 64u);
    EXPECT_THROW(bytesToFlits(8, 0), FatalError);
}

TEST(CollectiveAlgorithms, RingAllReduceStructure)
{
    const std::uint32_t p = 5;
    for (std::uint32_t rank = 0; rank < p; ++rank) {
        CollectiveDag dag = buildCollectiveDag(
            makeSpec("all_reduce", "ring", 16 * p), rank, p, 16, 0);
        // reduce-scatter + all-gather: p-1 steps each.
        EXPECT_EQ(dag.count(DagNodeKind::kSend), 2u * (p - 1));
        EXPECT_EQ(dag.count(DagNodeKind::kRecv), 2u * (p - 1));
    }
}

TEST(CollectiveAlgorithms, PairwiseAllToAllStructure)
{
    const std::uint32_t p = 6;
    CollectiveDag dag = buildCollectiveDag(
        makeSpec("all_to_all", "pairwise", 64), 2, p, 16, 0);
    EXPECT_EQ(dag.count(DagNodeKind::kSend), p - 1);
    EXPECT_EQ(dag.count(DagNodeKind::kRecv), p - 1);
}

TEST(CollectiveAlgorithms, DisseminationBarrierStructure)
{
    // p=5 needs ceil(log2 5) = 3 rounds of one-flit exchanges.
    CollectiveDag dag =
        buildCollectiveDag(makeSpec("barrier", "dissemination", 0), 1, 5,
                           16, 0);
    EXPECT_EQ(dag.count(DagNodeKind::kSend), 3u);
    EXPECT_EQ(dag.count(DagNodeKind::kRecv), 3u);
    EXPECT_EQ(dag.totalSendFlits(), 3u);
}

TEST(CollectiveAlgorithms, BinomialBroadcastStructure)
{
    const std::uint32_t p = 8;
    const std::uint32_t root = 2;
    std::size_t total_sends = 0;
    for (std::uint32_t rank = 0; rank < p; ++rank) {
        CollectiveDag dag = buildCollectiveDag(
            makeSpec("broadcast", "binomial", 256, root), rank, p, 16, 0);
        total_sends += dag.count(DagNodeKind::kSend);
        if (rank == root) {
            EXPECT_EQ(dag.count(DagNodeKind::kRecv), 0u);
            EXPECT_EQ(dag.count(DagNodeKind::kSend), 3u);
        } else {
            EXPECT_EQ(dag.count(DagNodeKind::kRecv), 1u);
        }
    }
    // A broadcast moves exactly p-1 messages in total.
    EXPECT_EQ(total_sends, p - 1);
}

/** Every algorithm must conserve flits: the flits rank a sends to rank b
 *  must equal the flits rank b expects from rank a, message by message,
 *  or the closed loop deadlocks. */
TEST(CollectiveAlgorithms, SendsMatchReceivesAcrossRanks)
{
    struct Case {
        const char* op;
        const char* algorithm;
        std::uint32_t p;
    };
    const Case cases[] = {
        {"all_reduce", "ring", 5},
        {"all_reduce", "ring", 8},
        {"all_reduce", "recursive_doubling", 8},
        {"all_reduce", "halving_doubling", 8},
        {"reduce_scatter", "ring", 7},
        {"reduce_scatter", "recursive_halving", 4},
        {"all_gather", "ring", 6},
        {"all_gather", "recursive_doubling", 4},
        {"all_to_all", "pairwise", 5},
        {"broadcast", "binomial", 6},
        {"barrier", "dissemination", 5},
    };
    for (const Case& c : cases) {
        // (src, dst) -> [message count, flit total]
        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::pair<std::size_t, std::uint64_t>>
            sent, expected;
        for (std::uint32_t rank = 0; rank < c.p; ++rank) {
            CollectiveDag dag = buildCollectiveDag(
                makeSpec(c.op, c.algorithm, 1024, 1), rank, c.p, 16, 0);
            for (std::uint32_t i = 0; i < dag.size(); ++i) {
                const DagNode& node = dag.node(i);
                if (node.kind == DagNodeKind::kSend) {
                    auto& cell = sent[{rank, node.peer}];
                    cell.first += 1;
                    cell.second += node.flits;
                } else if (node.kind == DagNodeKind::kRecv) {
                    auto& cell = expected[{node.peer, rank}];
                    cell.first += 1;
                    cell.second += node.flits;
                }
            }
        }
        EXPECT_EQ(sent, expected)
            << c.op << "/" << c.algorithm << " p=" << c.p;
    }
}

TEST(CollectiveAlgorithms, RecursiveAlgorithmsNeedPowerOfTwo)
{
    EXPECT_THROW(
        buildCollectiveDag(makeSpec("all_reduce", "recursive_doubling",
                                    64),
                           0, 6, 16, 0),
        FatalError);
    EXPECT_THROW(
        buildCollectiveDag(makeSpec("all_gather", "recursive_doubling",
                                    64),
                           0, 6, 16, 0),
        FatalError);
}

TEST(CollectiveAlgorithms, SingleRankIsEmpty)
{
    CollectiveDag dag = buildCollectiveDag(
        makeSpec("all_reduce", "ring", 1024), 0, 1, 16, 0);
    EXPECT_TRUE(dag.empty());
}

TEST(CollectiveAlgorithms, SpecParsing)
{
    CollectiveSpec spec = parseCollectiveSpec(json::parse(
        R"({"op": "all_reduce", "payload_bytes": 4096})"));
    EXPECT_EQ(spec.algorithm, "ring");  // op default
    EXPECT_EQ(spec.name, "all_reduce");
    EXPECT_THROW(parseCollectiveSpec(json::parse(
                     R"({"op": "gossip", "payload_bytes": 1})")),
                 FatalError);
    EXPECT_THROW(
        parseCollectiveSpec(json::parse(
            R"({"op": "broadcast", "algorithm": "ring",
                "payload_bytes": 1})")),
        FatalError);
    EXPECT_THROW(parseCollectiveSpec(json::parse(
                     R"({"op": "all_reduce", "payload_bytes": 0})")),
                 FatalError);
}

TEST(Collective, RingAllReduceRunsAndRecords)
{
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [{
            "type": "collective",
            "iterations": 2,
            "flit_bytes": 16,
            "max_packet_size": 16,
            "schedule": [{"op": "all_reduce", "algorithm": "ring",
                          "payload_bytes": 1024, "name": "grads"}]
        }]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(simulation.workload()->phase(), Phase::kDraining);
    // 4 ranks x 2(p-1)=6 sends x 2 iterations.
    EXPECT_EQ(result.sampler.count(), 48u);

    auto* app = dynamic_cast<CollectiveApplication*>(
        simulation.workload()->application(0));
    ASSERT_NE(app, nullptr);
    // One op record plus one iteration summary row per iteration.
    ASSERT_EQ(app->records().size(), 4u);
    for (const CollectiveRecord& record : app->records()) {
        EXPECT_LE(record.start, record.end);
        if (record.opIndex == 0) {
            EXPECT_EQ(record.name, "grads");
            EXPECT_EQ(record.algorithm, "ring");
            EXPECT_EQ(record.payloadBytes, 1024u);
            EXPECT_GT(record.duration(), 0u);
        } else {
            EXPECT_EQ(record.name, "iteration");
        }
    }
}

TEST(Collective, EveryOpCompletesOnNonPowerOfTwo)
{
    // One schedule exercising every op on 6 ranks (non-power-of-two, so
    // only the any-size algorithms are eligible).
    json::Value config = test::makeConfig(kNet6, R"({
        "applications": [{
            "type": "collective",
            "schedule": [
                {"op": "barrier"},
                {"op": "all_reduce", "payload_bytes": 512},
                {"op": "reduce_scatter", "payload_bytes": 512},
                {"op": "all_gather", "payload_bytes": 512},
                {"op": "all_to_all", "payload_bytes": 128},
                {"op": "broadcast", "payload_bytes": 512, "root": 3}
            ]
        }]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(simulation.workload()->phase(), Phase::kDraining);
    auto* app = dynamic_cast<CollectiveApplication*>(
        simulation.workload()->application(0));
    ASSERT_NE(app, nullptr);
    ASSERT_EQ(app->records().size(), 7u);  // 6 ops + iteration summary
}

TEST(Collective, SameSeedSameRecords)
{
    auto run = [](std::uint64_t seed) {
        json::Value config = test::makeConfig(kNet, R"({
            "applications": [{
                "type": "collective",
                "iterations": 3,
                "schedule": [{"op": "all_reduce",
                              "payload_bytes": 2048}]
            }]})", seed);
        Simulation simulation(config);
        simulation.run();
        return dynamic_cast<CollectiveApplication*>(
                   simulation.workload()->application(0))
            ->records();
    };
    auto a = run(7);
    auto b = run(7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start, b[i].start) << i;
        EXPECT_EQ(a[i].end, b[i].end) << i;
        EXPECT_EQ(a[i].name, b[i].name) << i;
    }
}

TEST(Collective, ComputePerFlitSlowsTheCollective)
{
    auto iterationTicks = [](unsigned compute_per_flit) {
        json::Value config = test::makeConfig(kNet, strf(R"({
            "applications": [{
                "type": "collective",
                "compute_per_flit": )", compute_per_flit, R"(,
                "schedule": [{"op": "all_reduce",
                              "payload_bytes": 2048}]
            }]})"));
        Simulation simulation(config);
        simulation.run();
        auto* app = dynamic_cast<CollectiveApplication*>(
            simulation.workload()->application(0));
        return app->records().front().duration();
    };
    EXPECT_GT(iterationTicks(8), iterationTicks(0));
}

TEST(Collective, ComposesWithBlastBackground)
{
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [
          {"type": "blast", "injection_rate": 0.1, "message_size": 1,
           "warmup_duration": 200,
           "traffic": {"type": "uniform_random"}},
          {"type": "collective", "iterations": 2,
           "schedule": [{"op": "all_reduce", "payload_bytes": 1024}]}
        ]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(simulation.workload()->phase(), Phase::kDraining);
    std::size_t collective_count = 0;
    for (const auto& s : result.sampler.samples()) {
        if (s.app == 1) {
            ++collective_count;
        }
    }
    EXPECT_EQ(collective_count, 48u);  // 4 ranks x 6 sends x 2 iters
    auto* app = dynamic_cast<CollectiveApplication*>(
        simulation.workload()->application(1));
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->records().size(), 4u);
}

TEST(Collective, StatsFileRoundTrip)
{
    std::string path = testing::TempDir() + "collective_stats.csv";
    json::Value config = test::makeConfig(kNet, strf(R"({
        "applications": [{
            "type": "collective", "iterations": 2,
            "stats_file": ")", path, R"(",
            "schedule": [{"op": "all_gather", "payload_bytes": 512,
                          "name": "acts"}]
        }]})"));
    Simulation simulation(config);
    simulation.run();
    auto* app = dynamic_cast<CollectiveApplication*>(
        simulation.workload()->application(0));
    ASSERT_NE(app, nullptr);

    auto parsed = CollectiveParser::parseFile(path);
    ASSERT_EQ(parsed.size(), app->records().size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].iteration, app->records()[i].iteration);
        EXPECT_EQ(parsed[i].opIndex, app->records()[i].opIndex);
        EXPECT_EQ(parsed[i].name, app->records()[i].name);
        EXPECT_EQ(parsed[i].start, app->records()[i].start);
        EXPECT_EQ(parsed[i].end, app->records()[i].end);
    }
    auto filtered = CollectiveParser::apply(parsed, {"+name=acts"});
    EXPECT_EQ(filtered.size(), 2u);
    std::remove(path.c_str());
}

TEST(Collective, BadConfigsAreFatal)
{
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{"type": "collective", "schedule": []}]})")),
                 FatalError);
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{"type": "collective",
            "schedule": [{"op": "gossip", "payload_bytes": 8}]}]})")),
                 FatalError);
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{"type": "collective", "iterations": 0,
            "schedule": [{"op": "barrier"}]}]})")),
                 FatalError);
    // Power-of-two requirement caught at construction on 6 ranks.
    EXPECT_THROW(runSimulation(test::makeConfig(kNet6, R"({
        "applications": [{"type": "collective",
            "schedule": [{"op": "all_reduce",
                          "algorithm": "recursive_doubling",
                          "payload_bytes": 64}]}]})")),
                 FatalError);
}

}  // namespace
}  // namespace ss
