/** @file Topology construction and routing-walk validation: for every
 *  (src, dst) pair, statically walking the routing algorithm through the
 *  wired channels must reach the right interface, within the minimal hop
 *  count for minimal algorithms. */
#include <gtest/gtest.h>

#include <memory>

#include "core/simulator.h"
#include "json/settings.h"
#include "network/interface.h"
#include "network/network.h"
#include "topology/dragonfly.h"
#include "topology/folded_clos.h"
#include "topology/hyperx.h"
#include "topology/torus.h"
#include "types/message.h"

namespace ss {
namespace {

struct WalkResult {
    std::uint32_t delivered;  ///< interface reached
    std::uint32_t hops;       ///< routers traversed
};

/** Walks one packet from src to dst taking option @p pick each hop. */
WalkResult
walk(Network* net, std::uint32_t src, std::uint32_t dst,
     std::uint32_t pick_seed = 0)
{
    Message msg(0, 0, src, dst, 1, 64);
    Packet* pkt = msg.packet(0);
    // Source leaf router: the interface's output channel sink.
    Channel* ch = nullptr;
    {
        // Find the router by consulting minimalHops-independent wiring:
        // every topology wires interface t to some router input; walk
        // starts there. We recover it through the interface output
        // channel in the network — the interface itself knows it.
        // Simplest: routers' input from terminal == interface id % conc,
        // but we avoid topology math: probe all routers' engines is
        // overkill, so use the network's interface wiring instead.
        ch = nullptr;
    }
    // Use the first router whose input channel the interface feeds: the
    // network wired iface->setOutputChannel with sink = router.
    // Interface lacks a getter; recover via channel introspection from
    // the router side is awkward, so walk from the router owning the
    // terminal: every Network subclass maps terminal t to router
    // interface-side deterministically through minimalHops(t, t) == 1;
    // we simply scan routers for an engine that ejects t when at dst.
    (void)ch;

    // Identify the source router: the unique router that, asked to route
    // a packet destined to src arriving on any port, returns an eject
    // option whose channel leads to interface src.
    Router* current = nullptr;
    std::uint32_t in_port = 0;
    for (std::uint32_t r = 0; r < net->numRouters() && !current; ++r) {
        Router* router = net->router(r);
        for (std::uint32_t p = 0; p < router->numPorts(); ++p) {
            Channel* out = router->outputChannel(p);
            if (out == nullptr) {
                continue;
            }
            auto* iface = dynamic_cast<Interface*>(out->sink());
            if (iface != nullptr && iface->id() == src) {
                current = router;
                in_port = p;  // terminal ports are bidirectional pairs
                break;
            }
        }
    }
    EXPECT_NE(current, nullptr) << "no router serves terminal " << src;

    Random rng(pick_seed);
    std::uint32_t hops = 1;
    for (int step = 0; step < 64; ++step) {
        std::vector<RoutingAlgorithm::Option> options;
        current->routingEngine(in_port)->route(pkt, 0, &options);
        EXPECT_FALSE(options.empty());
        const auto& opt = options[rng.nextU64(options.size())];
        Channel* out = current->outputChannel(opt.port);
        EXPECT_NE(out, nullptr)
            << "unwired port " << opt.port << " on router "
            << current->id();
        if (auto* next = dynamic_cast<Router*>(out->sink())) {
            current = next;
            in_port = out->sinkPort();
            ++hops;
            continue;
        }
        auto* iface = dynamic_cast<Interface*>(out->sink());
        EXPECT_NE(iface, nullptr);
        return WalkResult{iface->id(), hops};
    }
    ADD_FAILURE() << "routing loop " << src << " -> " << dst;
    return WalkResult{~0u, 0};
}

struct TopologyCase {
    const char* name;
    const char* network_json;
    bool minimal;  ///< walk hops must equal minimalHops
};

class TopologyWalkTest : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologyWalkTest, EveryPairRoutesToDestination)
{
    Simulator sim(1);
    json::Value settings = json::parse(GetParam().network_json);
    std::string topology = json::getString(settings, "topology");
    std::unique_ptr<Network> net(NetworkFactory::instance().create(
        topology, &sim, "network", nullptr, settings));

    for (std::uint32_t src = 0; src < net->numInterfaces(); ++src) {
        for (std::uint32_t dst = 0; dst < net->numInterfaces(); ++dst) {
            for (std::uint32_t seed = 0; seed < 3; ++seed) {
                WalkResult result = walk(net.get(), src, dst, seed);
                EXPECT_EQ(result.delivered, dst)
                    << GetParam().name << " src=" << src;
                std::uint32_t min_hops = net->minimalHops(src, dst);
                EXPECT_GE(result.hops, min_hops);
                if (GetParam().minimal) {
                    EXPECT_EQ(result.hops, min_hops)
                        << GetParam().name << " " << src << "->" << dst;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyWalkTest,
    ::testing::Values(
        TopologyCase{"torus_2d_dor",
                     R"({"topology": "torus", "widths": [4, 3],
                         "concentration": 2, "num_vcs": 2,
                         "routing": {"algorithm":
                                     "torus_dimension_order"}})",
                     true},
        TopologyCase{"torus_4d_dor",
                     R"({"topology": "torus", "widths": [2, 2, 2, 2],
                         "concentration": 1, "num_vcs": 4,
                         "routing": {"algorithm":
                                     "torus_dimension_order"}})",
                     true},
        TopologyCase{"torus_valiant",
                     R"({"topology": "torus", "widths": [3, 3],
                         "concentration": 1, "num_vcs": 4,
                         "routing": {"algorithm": "torus_valiant"}})",
                     false},
        TopologyCase{"torus_adaptive",
                     R"({"topology": "torus", "widths": [4, 4],
                         "concentration": 1, "num_vcs": 4,
                         "routing": {"algorithm":
                                     "torus_minimal_adaptive"}})",
                     true},
        TopologyCase{"clos_deterministic",
                     R"({"topology": "folded_clos", "half_radix": 2,
                         "levels": 3, "num_vcs": 1,
                         "routing": {"algorithm":
                                     "folded_clos_deterministic"}})",
                     true},
        TopologyCase{"clos_adaptive_merged",
                     R"({"topology": "folded_clos", "half_radix": 4,
                         "levels": 2, "num_vcs": 1,
                         "routing": {"algorithm":
                                     "folded_clos_adaptive"}})",
                     true},
        TopologyCase{"clos_unmerged",
                     R"({"topology": "folded_clos", "half_radix": 3,
                         "levels": 2, "num_vcs": 1,
                         "merged_roots": false,
                         "routing": {"algorithm":
                                     "folded_clos_deterministic"}})",
                     true},
        TopologyCase{"hyperx_1d_dor",
                     R"({"topology": "hyperx", "widths": [8],
                         "concentration": 2, "num_vcs": 2,
                         "routing": {"algorithm":
                                     "hyperx_dimension_order"}})",
                     true},
        TopologyCase{"hyperx_2d_dor",
                     R"({"topology": "hyperx", "widths": [3, 4],
                         "concentration": 1, "num_vcs": 2,
                         "routing": {"algorithm":
                                     "hyperx_dimension_order"}})",
                     true},
        TopologyCase{"hyperx_ugal",
                     R"({"topology": "hyperx", "widths": [6],
                         "concentration": 1, "num_vcs": 2,
                         "routing": {"algorithm": "hyperx_ugal"}})",
                     false},
        TopologyCase{"dragonfly_minimal",
                     R"({"topology": "dragonfly", "group_size": 2,
                         "global_channels": 2, "concentration": 2,
                         "num_vcs": 2,
                         "routing": {"algorithm":
                                     "dragonfly_minimal"}})",
                     true},
        TopologyCase{"dragonfly_valiant",
                     R"({"topology": "dragonfly", "group_size": 2,
                         "global_channels": 1, "concentration": 1,
                         "num_vcs": 3,
                         "routing": {"algorithm":
                                     "dragonfly_valiant"}})",
                     false},
        TopologyCase{"parking_lot",
                     R"({"topology": "parking_lot", "length": 5,
                         "concentration": 2, "num_vcs": 1,
                         "routing": {"algorithm": "parking_lot"}})",
                     true}));

TEST(Torus, CoordinateRoundTrip)
{
    Simulator sim(1);
    json::Value settings = json::parse(
        R"({"topology": "torus", "widths": [3, 4, 5], "num_vcs": 2,
            "routing": {"algorithm": "torus_dimension_order"}})");
    std::unique_ptr<Network> base(NetworkFactory::instance().create(
        "torus", &sim, "network", nullptr, settings));
    auto* torus = dynamic_cast<Torus*>(base.get());
    ASSERT_NE(torus, nullptr);
    EXPECT_EQ(torus->numRouters(), 60u);
    for (std::uint32_t r = 0; r < torus->numRouters(); ++r) {
        std::vector<std::uint32_t> coords(3);
        for (std::uint32_t d = 0; d < 3; ++d) {
            coords[d] = torus->coordinate(r, d);
            EXPECT_LT(coords[d], torus->widths()[d]);
        }
        EXPECT_EQ(torus->routerAt(coords), r);
    }
}

TEST(FoldedClos, StructureCounts)
{
    Simulator sim(1);
    json::Value settings = json::parse(
        R"({"topology": "folded_clos", "half_radix": 2, "levels": 3,
            "num_vcs": 1,
            "routing": {"algorithm": "folded_clos_deterministic"}})");
    std::unique_ptr<Network> base(NetworkFactory::instance().create(
        "folded_clos", &sim, "network", nullptr, settings));
    auto* clos = dynamic_cast<FoldedClos*>(base.get());
    ASSERT_NE(clos, nullptr);
    EXPECT_EQ(clos->numInterfaces(), 8u);   // k^L
    EXPECT_EQ(clos->numRouters(), 10u);     // 4 + 4 + 2 merged roots
    EXPECT_TRUE(clos->mergedRoots());
    EXPECT_EQ(clos->levelOf(0), 0u);
    EXPECT_EQ(clos->levelOf(4), 1u);
    EXPECT_EQ(clos->levelOf(8), 2u);
    // Minimal hops: same leaf 1; adjacent subtree 3; across root 5.
    EXPECT_EQ(clos->minimalHops(0, 1), 1u);
    EXPECT_EQ(clos->minimalHops(0, 2), 3u);
    EXPECT_EQ(clos->minimalHops(0, 7), 5u);
}

TEST(HyperX, DistanceCountsDifferingDims)
{
    Simulator sim(1);
    json::Value settings = json::parse(
        R"({"topology": "hyperx", "widths": [3, 3], "num_vcs": 2,
            "routing": {"algorithm": "hyperx_dimension_order"}})");
    std::unique_ptr<Network> base(NetworkFactory::instance().create(
        "hyperx", &sim, "network", nullptr, settings));
    auto* hx = dynamic_cast<HyperX*>(base.get());
    ASSERT_NE(hx, nullptr);
    EXPECT_EQ(hx->routerDistance(0, 0), 0u);
    EXPECT_EQ(hx->routerDistance(0, 1), 1u);  // same row
    EXPECT_EQ(hx->routerDistance(0, 4), 2u);  // diagonal
    EXPECT_EQ(hx->minimalHops(0, 4), 3u);
}

TEST(Dragonfly, CanonicalGroupCount)
{
    Simulator sim(1);
    json::Value settings = json::parse(
        R"({"topology": "dragonfly", "group_size": 3,
            "global_channels": 2, "concentration": 2, "num_vcs": 2,
            "routing": {"algorithm": "dragonfly_minimal"}})");
    std::unique_ptr<Network> base(NetworkFactory::instance().create(
        "dragonfly", &sim, "network", nullptr, settings));
    auto* df = dynamic_cast<Dragonfly*>(base.get());
    ASSERT_NE(df, nullptr);
    EXPECT_EQ(df->numGroups(), 7u);  // a*h + 1
    EXPECT_EQ(df->numRouters(), 21u);
    EXPECT_EQ(df->numInterfaces(), 42u);
    // Every ordered group pair has a global attachment.
    for (std::uint32_t g = 0; g < 7; ++g) {
        for (std::uint32_t gt = 0; gt < 7; ++gt) {
            if (g == gt) {
                continue;
            }
            std::uint32_t r, p;
            df->globalAttachment(g, gt, &r, &p);
            EXPECT_LT(r, 3u);
            EXPECT_GE(p, df->concentration() + df->groupSize() - 1);
        }
    }
}

}  // namespace
}  // namespace ss
