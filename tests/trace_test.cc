/** @file Trace application tests: parsing, replay timing, composition
 *  with synthetic traffic. */
#include <gtest/gtest.h>

#include <fstream>

#include "json/settings.h"
#include "sim/builder.h"
#include "test_util.h"
#include "workload/trace.h"

namespace ss {
namespace {

const char* kNet =
    R"({"topology": "torus", "widths": [4], "concentration": 1,
        "num_vcs": 2, "clock_period": 1, "channel_latency": 3,
        "router": {"architecture": "input_queued",
                   "input_buffer_size": 8},
        "routing": {"algorithm": "torus_dimension_order"}})";

TEST(TraceParser, ParsesRows)
{
    auto records = parseTraceText(
        "time,src,dst,size\n"
        "# a comment\n"
        "0,0,1,1\n"
        "50,2,3,8\n"
        "100,1,0,4\n");
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[1].time, 50u);
    EXPECT_EQ(records[1].source, 2u);
    EXPECT_EQ(records[1].destination, 3u);
    EXPECT_EQ(records[1].flits, 8u);
}

TEST(TraceParser, RejectsBadInput)
{
    EXPECT_THROW(parseTraceText(""), FatalError);
    EXPECT_THROW(parseTraceText("wrong,header\n"), FatalError);
    EXPECT_THROW(parseTraceText("time,src,dst,size\n1,2,3\n"),
                 FatalError);
    EXPECT_THROW(parseTraceText("time,src,dst,size\n1,2,3,0\n"),
                 FatalError);
    EXPECT_THROW(parseTraceText("time,src,dst,size\nx,2,3,1\n"),
                 FatalError);
}

TEST(TraceParser, ToleratesCrlfAndTrailingBlankLines)
{
    auto records = parseTraceText(
        "time,src,dst,size\r\n"
        "0,0,1,1\r\n"
        "50,2,3,8\r\n"
        "\r\n"
        "\n"
        "\n");
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].time, 50u);
    EXPECT_EQ(records[1].flits, 8u);
}

TEST(TraceParser, RejectsOutOfOrderTimestampsNamingLine)
{
    try {
        parseTraceText(
            "time,src,dst,size\n"
            "100,0,1,1\n"
            "50,1,0,1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("non-decreasing"), std::string::npos);
        EXPECT_NE(what.find("line 3"), std::string::npos);
    }
}

TEST(TraceParser, MalformedRowErrorNamesLine)
{
    try {
        parseTraceText(
            "time,src,dst,size\n"
            "0,0,1,1\n"
            "# still fine\n"
            "10,2,bogus,1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("bad trace row"), std::string::npos);
        EXPECT_NE(what.find("line 4"), std::string::npos);
    }
}

TEST(Trace, ReplaysInlineMessages)
{
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [{
            "type": "trace",
            "messages": [[0, 0, 2, 1], [10, 1, 3, 4], [10, 2, 0, 1],
                          [500, 3, 1, 2]]
        }]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    ASSERT_EQ(result.sampler.count(), 4u);
    // Injection times respect the trace offsets (relative to Start).
    std::uint64_t start = ~0ULL;
    for (const auto& s : result.sampler.samples()) {
        start = std::min(start, s.createTick);
    }
    for (const auto& s : result.sampler.samples()) {
        if (s.source == 3) {
            EXPECT_EQ(s.createTick, start + 500);
            EXPECT_EQ(s.flits, 2u);
        }
    }
}

TEST(Trace, ReplaysFromFile)
{
    std::string path = testing::TempDir() + "trace_test.csv";
    {
        std::ofstream f(path);
        f << "time,src,dst,size\n";
        for (int i = 0; i < 20; ++i) {
            f << i * 7 << "," << i % 4 << "," << (i + 1) % 4 << ",2\n";
        }
    }
    json::Value config = test::makeConfig(
        kNet, strf(R"({"applications": [{
            "type": "trace", "file": ")", path, R"("}]})"));
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 20u);
}

TEST(Trace, EmptyTraceCompletesImmediately)
{
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [{"type": "trace", "messages": []}]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 0u);
}

TEST(Trace, OutOfRangeEndpointsAreFatal)
{
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{"type": "trace",
                           "messages": [[0, 9, 0, 1]]}]})")),
                 FatalError);
    EXPECT_THROW(runSimulation(test::makeConfig(kNet, R"({
        "applications": [{"type": "trace",
                           "messages": [[0, 0, 9, 1]]}]})")),
                 FatalError);
}

TEST(Trace, ComposesWithBlastBackground)
{
    // A trace replays on top of Blast background traffic — the
    // multi-workload composition the four-phase handshake enables.
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [
          {"type": "blast", "injection_rate": 0.2, "message_size": 1,
           "warmup_duration": 500,
           "traffic": {"type": "uniform_random"}},
          {"type": "trace",
           "messages": [[0, 0, 2, 4], [100, 1, 3, 4], [200, 2, 0, 4]]}
        ]})");
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    std::size_t trace_count = 0;
    for (const auto& s : result.sampler.samples()) {
        if (s.app == 1) {
            ++trace_count;
            EXPECT_EQ(s.flits, 4u);
        }
    }
    EXPECT_EQ(trace_count, 3u);
}

TEST(Trace, CompositionFollowsFourPhaseHandshake)
{
    // Trace + Blast must march through the handshake together: the run
    // ends in Draining, the sampling window is well-formed, and every
    // sampled message was created at or after the Start command (no app
    // generates sampled traffic while the workload is still Warming).
    json::Value config = test::makeConfig(kNet, R"({
        "applications": [
          {"type": "blast", "injection_rate": 0.2, "message_size": 1,
           "warmup_duration": 500, "num_samples": 50,
           "traffic": {"type": "uniform_random"}},
          {"type": "trace",
           "messages": [[0, 0, 2, 4], [100, 1, 3, 4], [200, 2, 0, 4]]}
        ]})");
    Simulation simulation(config);
    RunResult result = simulation.run();
    EXPECT_FALSE(result.saturated);
    Workload* workload = simulation.workload();
    EXPECT_EQ(workload->phase(), Phase::kDraining);
    EXPECT_LT(workload->generateStartTick(),
              workload->generateStopTick());
    std::size_t trace_count = 0;
    for (const auto& s : result.sampler.samples()) {
        EXPECT_GE(s.createTick, workload->generateStartTick());
        if (s.app == 1) {
            ++trace_count;
        }
    }
    // The trace's replay offsets are relative to Start.
    EXPECT_EQ(trace_count, 3u);
}

}  // namespace
}  // namespace ss
