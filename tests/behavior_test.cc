/** @file Architecture-level behavioral properties: the qualitative
 *  claims the paper makes about arbitration fairness and adaptive
 *  routing, reproduced as assertions on small systems. */
#include <gtest/gtest.h>

#include "json/settings.h"
#include "sim/builder.h"
#include "test_util.h"

namespace ss {
namespace {

/** Runs the parking-lot convergecast and returns per-source accepted
 *  throughput at the sink, farthest source first. */
std::vector<double>
parkingLotThroughputs(const std::string& arbiter)
{
    // 5-router chain, everyone floods terminal 0: each merge point
    // halves upstream bandwidth under round-robin (paper §IV-B).
    json::Value config = test::makeConfig(
        strf(R"({"topology": "parking_lot", "length": 5,
                 "concentration": 1, "num_vcs": 1, "clock_period": 1,
                 "channel_latency": 2,
                 "router": {"architecture": "input_queued",
                            "input_buffer_size": 8,
                            "crossbar_latency": 1,
                            "crossbar_scheduler": {
                                "flow_control": "flit_buffer",
                                "arbiter": {"type": ")" +
                 arbiter + R"("}},
                            "vc_allocator": {"arbiter": {"type": ")" +
                 arbiter + R"("}}},
                 "routing": {"algorithm": "parking_lot"}})"),
        R"({"applications": [{
            "type": "blast", "injection_rate": 1.0, "message_size": 1,
            "warmup_duration": 3000, "sample_duration": 12000,
            "traffic": {"type": "single_target", "target": 0}}]})",
        1, 60000);
    Simulation simulation(config);
    RunResult result = simulation.run();
    std::vector<double> rates;
    for (std::uint32_t src = 4; src >= 1; --src) {
        rates.push_back(result.rateMonitor.sourceThroughput(
            src, result.channelPeriod));
    }
    return rates;
}

TEST(ParkingLot, RoundRobinStarvesFarSources)
{
    auto rates = parkingLotThroughputs("round_robin");
    ASSERT_EQ(rates.size(), 4u);
    // rates[0] = farthest (router 4) ... rates[3] = nearest (router 1).
    // Round-robin halves bandwidth at each merge: the nearest source
    // gets several times the farthest one's share. (Terminal 0's own
    // self-traffic takes roughly half the sink link, which is why the
    // chain total sits near 0.5, still bounded by the link.)
    EXPECT_GT(rates[3], 2.5 * rates[0]);
    double total = rates[0] + rates[1] + rates[2] + rates[3];
    EXPECT_LE(total, 1.05);
    EXPECT_GT(total, 0.3);
}

TEST(ParkingLot, AgeArbitrationRestoresFairness)
{
    // Age-based packet arbitration fixes the parking-lot unfairness
    // (paper §IV-B; Abts & Weisser SC'07).
    auto rr = parkingLotThroughputs("round_robin");
    auto age = parkingLotThroughputs("age");
    double rr_spread = rr.back() / rr.front();
    double age_spread = age.back() / age.front();
    EXPECT_LT(age_spread, rr_spread * 0.5)
        << "age should be much fairer than round-robin";
    // Under age arbitration every source gets within 2x of the mean.
    double mean = (age[0] + age[1] + age[2] + age[3]) / 4.0;
    for (double r : age) {
        EXPECT_GT(r, mean * 0.5);
        EXPECT_LT(r, mean * 2.0);
    }
}

double
hyperxThroughput(const std::string& algorithm,
                 const std::string& traffic, double load)
{
    // Concentration 4: under tornado, all four terminals of a router
    // target the next router, overloading the single minimal link 4x —
    // the adversarial pattern of flattened butterflies.
    json::Value config = test::makeConfig(
        strf(R"({"topology": "hyperx", "widths": [4],
                 "concentration": 4, "num_vcs": 2, "clock_period": 1,
                 "channel_latency": 8,
                 "router": {"architecture": "input_queued",
                            "input_buffer_size": 32,
                            "crossbar_latency": 1},
                 "routing": {"algorithm": ")" + algorithm + R"("}})"),
        strf(R"({"applications": [{
            "type": "blast", "injection_rate": )", load, R"(,
            "message_size": 1,
            "warmup_duration": 3000, "sample_duration": 10000,
            "traffic": {"type": ")", traffic,
             R"(", "widths": [4], "concentration": 4}}]})"),
        1, 80000);
    return runSimulation(config).throughput();
}

TEST(AdaptiveRouting, UgalBeatsMinimalOnAdversarialTraffic)
{
    // Tornado with concentration > 1: minimal routing funnels each
    // router's four terminals onto one link (accepted ~0.25); UGAL
    // load-balances over Valiant intermediates (Singh '05).
    double minimal = hyperxThroughput("hyperx_dimension_order",
                                      "tornado", 0.9);
    double ugal = hyperxThroughput("hyperx_ugal", "tornado", 0.9);
    EXPECT_GT(ugal, minimal * 1.2);
}

TEST(AdaptiveRouting, UgalStaysNearMinimalOnUniformRandom)
{
    // On benign traffic UGAL should not give up much: it mostly picks
    // minimal paths.
    double minimal =
        hyperxThroughput("hyperx_dimension_order", "uniform_random", 0.5);
    double ugal = hyperxThroughput("hyperx_ugal", "uniform_random", 0.5);
    EXPECT_GT(ugal, minimal * 0.85);
}

TEST(AdaptiveRouting, ValiantSpreadsDragonflyGroupHotspot)
{
    // All traffic from each group targets the next group: the single
    // minimal global channel per group pair is the bottleneck; Valiant
    // spreads over intermediate groups.
    auto run = [](const std::string& algorithm) {
        json::Value config = test::makeConfig(
            strf(R"({"topology": "dragonfly", "group_size": 2,
                     "global_channels": 1, "concentration": 1,
                     "num_vcs": 4, "clock_period": 1,
                     "channel_latency": 6,
                     "router": {"architecture": "input_queued",
                                "input_buffer_size": 32,
                                "crossbar_latency": 1},
                     "routing": {"algorithm": ")" + algorithm +
                 R"("}})"),
            // offset 2 = group size * concentration: next group over.
            R"({"applications": [{
                "type": "blast", "injection_rate": 0.8,
                "message_size": 1,
                "warmup_duration": 3000, "sample_duration": 10000,
                "traffic": {"type": "neighbor", "offset": 2}}]})",
            1, 80000);
        return runSimulation(config).throughput();
    };
    double minimal = run("dragonfly_minimal");
    double valiant = run("dragonfly_valiant");
    EXPECT_GT(valiant, minimal * 1.2);
}

TEST(AdaptiveRouting, TorusAdaptiveAtLeastMatchesDorOnTranspose)
{
    auto run = [](const std::string& algorithm) {
        json::Value config = test::makeConfig(
            strf(R"({"topology": "torus", "widths": [4, 4],
                     "concentration": 1, "num_vcs": 4,
                     "clock_period": 1, "channel_latency": 4,
                     "router": {"architecture": "input_queued",
                                "input_buffer_size": 16,
                                "crossbar_latency": 1},
                     "routing": {"algorithm": ")" + algorithm +
                 R"("}})"),
            R"({"applications": [{
                "type": "blast", "injection_rate": 0.7,
                "message_size": 1,
                "warmup_duration": 2000, "sample_duration": 8000,
                "traffic": {"type": "transpose"}}]})",
            1, 60000);
        return runSimulation(config).throughput();
    };
    double dor = run("torus_dimension_order");
    double adaptive = run("torus_minimal_adaptive");
    EXPECT_GE(adaptive, dor * 0.95);
}


TEST(AdaptiveRouting, TorusValiantBeatsDorOnTornado)
{
    // Tornado on a ring overloads one direction under DOR; Valiant
    // spreads traffic over both (at the cost of longer paths).
    auto run = [](const std::string& algorithm) {
        json::Value config = test::makeConfig(
            strf(R"({"topology": "torus", "widths": [8],
                     "concentration": 1, "num_vcs": 4,
                     "clock_period": 1, "channel_latency": 4,
                     "router": {"architecture": "input_queued",
                                "input_buffer_size": 32,
                                "crossbar_latency": 1},
                     "routing": {"algorithm": ")" + algorithm +
                 R"("}})"),
            R"({"applications": [{
                "type": "blast", "injection_rate": 0.6,
                "message_size": 1,
                "warmup_duration": 3000, "sample_duration": 10000,
                "traffic": {"type": "tornado", "widths": [8],
                             "concentration": 1}}]})",
            1, 80000);
        return runSimulation(config).throughput();
    };
    double dor = run("torus_dimension_order");
    double valiant = run("torus_valiant");
    // DOR caps at ~1/3 (3-hop rotation on one direction of the ring);
    // Valiant approaches ~1/2.
    EXPECT_GT(valiant, dor * 1.15);
}

TEST(AdaptiveRouting, TorusValiantMarksNonminimal)
{
    json::Value config = test::makeConfig(
        R"({"topology": "torus", "widths": [4, 4], "concentration": 1,
            "num_vcs": 4, "clock_period": 1, "channel_latency": 4,
            "router": {"architecture": "input_queued",
                       "input_buffer_size": 16},
            "routing": {"algorithm": "torus_valiant"}})",
        test::blastWorkload(0.1, 1, 20));
    RunResult result = runSimulation(config);
    EXPECT_FALSE(result.saturated);
    EXPECT_EQ(result.sampler.count(), 16u * 20u);
    // Most random intermediates differ from both endpoints.
    EXPECT_GT(result.sampler.nonminimalFraction(), 0.5);
    for (const auto& s : result.sampler.samples()) {
        EXPECT_GE(s.hops, s.minHops);
    }
}

TEST(CongestionSensing, StaleSensorHurtsClosThroughput)
{
    // The §VI-A mechanism as a unit assertion: finite output queues,
    // adaptive uprouting, high load — 32 ns sensing delay must lose
    // measurable throughput against 1 ns.
    auto run = [](unsigned delay) {
        json::Value config = test::makeConfig(
            strf(R"({"topology": "folded_clos", "half_radix": 4,
                     "levels": 2, "num_vcs": 1, "clock_period": 1,
                     "channel_latency": 50,
                     "router": {"architecture": "output_queued",
                                "input_buffer_size": 150,
                                "output_buffer_size": 64,
                                "core_latency": 50,
                                "congestion_sensor": {
                                    "latency": )", delay, R"(,
                                    "pools": "output"}},
                     "routing": {"algorithm": "folded_clos_adaptive"}})"),
            R"({"applications": [{
                "type": "blast", "injection_rate": 0.9,
                "message_size": 1,
                "warmup_duration": 4000, "sample_duration": 8000,
                "traffic": {"type": "uniform_random"}}]})",
            1, 60000);
        return runSimulation(config).throughput();
    };
    double fresh = run(1);
    double stale = run(32);
    EXPECT_GT(fresh, stale);
}

}  // namespace
}  // namespace ss
