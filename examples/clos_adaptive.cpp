/**
 * @file
 * Example: adaptive uprouting on a folded-Clos with latent congestion
 * sensing — a miniature of the paper's §VI-A case study.
 *
 * Builds a 64-terminal 3-level folded Clos of idealistic output-queued
 * routers, then runs the same uniform-random load twice: once with 1 ns
 * congestion sensing and once with 32 ns. Prints both latency
 * distributions so the cost of stale congestion information is visible
 * directly.
 *
 *   $ ./clos_adaptive
 */
#include <cstdio>

#include "json/settings.h"
#include "sim/builder.h"

namespace {

ss::json::Value
makeConfig(unsigned sensor_latency_ns)
{
    return ss::json::parse(ss::strf(R"({
      "simulator": {"seed": 7, "time_limit": 400000},
      "network": {
        "topology": "folded_clos",
        "half_radix": 4,
        "levels": 3,
        "num_vcs": 1,
        "clock_period": 1,
        "channel_latency": 50,
        "router": {
          "architecture": "output_queued",
          "input_buffer_size": 150,
          "output_buffer_size": 64,
          "core_latency": 50,
          "congestion_sensor": {
            "type": "credit",
            "latency": )", sensor_latency_ns, R"(,
            "granularity": "vc",
            "pools": "output"
          }
        },
        "routing": {"algorithm": "folded_clos_adaptive"}
      },
      "workload": {
        "applications": [{
          "type": "blast",
          "injection_rate": 0.45,
          "message_size": 1,
          "warmup_duration": 6000,
          "sample_duration": 12000,
          "traffic": {"type": "uniform_random"}
        }]
      }
    })"));
}

}  // namespace

int
main()
{
    std::printf("adaptive uprouting on a 64-terminal folded Clos, "
                "45%% uniform random load, 64-flit output queues\n\n");
    for (unsigned delay : {1u, 32u}) {
        ss::RunResult result = ss::runSimulation(makeConfig(delay));
        std::printf("congestion sensing delay %2u ns:\n", delay);
        if (result.saturated) {
            std::printf("  SATURATED — the network could not deliver "
                        "the offered load\n");
            std::printf("  accepted throughput: %.3f "
                        "flits/terminal/cycle\n\n",
                        result.throughput());
            continue;
        }
        ss::Distribution latency =
            result.sampler.totalLatencyDistribution();
        std::printf("  mean %.1f ns | p50 %.0f | p99 %.0f | p99.9 %.0f "
                    "| max %.0f\n",
                    latency.mean(), latency.percentile(50),
                    latency.percentile(99), latency.percentile(99.9),
                    latency.max());
        std::printf("  accepted throughput: %.3f flits/terminal/cycle\n\n",
                    result.throughput());
    }
    std::printf("stale congestion information makes every input port "
                "pile onto the same 'good' port (paper §VI-A).\n");
    return 0;
}
