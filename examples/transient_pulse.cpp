/**
 * @file
 * Example: multi-application transient analysis with the Workload
 * handshake (paper §IV-A, Figure 5).
 *
 * A Blast application supplies steady uniform-random background traffic
 * and Completes immediately; a Pulse application defines the sampling
 * window with a burst. The example prints the Blast latency time series
 * and demonstrates SSParse-style filtering by application.
 *
 *   $ ./transient_pulse
 */
#include <cstdio>
#include <map>

#include "json/settings.h"
#include "sim/builder.h"
#include "tools/log_parser.h"

int
main()
{
    std::string log_path = "/tmp/supersim_transient.csv";
    ss::json::Value config = ss::json::parse(ss::strf(R"({
      "simulator": {"seed": 3, "time_limit": 4000000},
      "network": {
        "topology": "torus",
        "widths": [4, 4],
        "concentration": 1,
        "num_vcs": 2,
        "clock_period": 1,
        "channel_latency": 10,
        "router": {"architecture": "input_queued",
                    "input_buffer_size": 32,
                    "crossbar_latency": 2},
        "routing": {"algorithm": "torus_dimension_order"}
      },
      "workload": {
        "message_log": ")", log_path, R"(",
        "applications": [
          {"type": "blast", "injection_rate": 0.25, "message_size": 1,
           "warmup_duration": 4000,
           "traffic": {"type": "uniform_random"}},
          {"type": "pulse", "injection_rate": 0.6, "num_messages": 250,
           "message_size": 1, "delay": 5000,
           "traffic": {"type": "uniform_random"}}
        ]
      }
    })"));

    ss::RunResult result = ss::runSimulation(config);
    std::printf("transient run complete: %zu sampled messages, log at "
                "%s\n\n",
                result.sampler.count(), log_path.c_str());

    // SSParse-style filtering: look at Blast (app 0) only.
    auto samples = ss::LogParser::parseFile(log_path);
    auto blast = ss::LogParser::apply(
        samples, std::vector<std::string>{"+app=0"});
    std::printf("filter +app=0 keeps %zu of %zu messages\n\n",
                blast.size(), samples.size());

    // Time-binned mean latency: the pulse disturbance and recovery.
    std::map<std::uint64_t, std::pair<double, std::uint64_t>> bins;
    for (const auto& s : blast) {
        auto& [sum, n] = bins[s.deliverTick / 2000];
        sum += static_cast<double>(s.totalLatency());
        ++n;
    }
    std::printf("%-12s %-14s %s\n", "time (ns)", "mean latency", "");
    for (const auto& [b, agg] : bins) {
        double mean = agg.first / static_cast<double>(agg.second);
        int bars = static_cast<int>(mean / 4.0);
        std::printf("%-12lu %-14.1f ", (unsigned long)(b * 2000), mean);
        for (int i = 0; i < bars && i < 60; ++i) {
            std::putchar('#');
        }
        std::putchar('\n');
    }
    std::printf("\nthe spike is the Pulse burst; the decay back to "
                "baseline is the network draining (paper Figure 5).\n");
    return 0;
}
