/**
 * @file
 * Example: comparing flow control techniques on a 4-D torus — a
 * miniature of the paper's §VI-C case study.
 *
 * Runs the same 16-flit-message workload under flit-buffer,
 * packet-buffer, and winner-take-all crossbar scheduling and prints the
 * resulting latency distributions side by side.
 *
 *   $ ./torus_flowcontrol
 */
#include <cstdio>

#include "json/settings.h"
#include "sim/builder.h"

namespace {

ss::json::Value
makeConfig(const std::string& flow_control)
{
    return ss::json::parse(ss::strf(R"({
      "simulator": {"seed": 21, "time_limit": 400000},
      "network": {
        "topology": "torus",
        "widths": [3, 3, 3, 3],
        "concentration": 1,
        "num_vcs": 8,
        "clock_period": 1,
        "channel_latency": 5,
        "router": {
          "architecture": "input_queued",
          "input_buffer_size": 128,
          "crossbar_latency": 25,
          "crossbar_scheduler": {"flow_control": ")", flow_control,
                                    R"("}
        },
        "routing": {"algorithm": "torus_dimension_order"}
      },
      "workload": {
        "applications": [{
          "type": "blast",
          "injection_rate": 0.3,
          "message_size": 16,
          "max_packet_size": 32,
          "warmup_duration": 8000,
          "sample_duration": 15000,
          "traffic": {"type": "uniform_random"}
        }]
      }
    })"));
}

}  // namespace

int
main()
{
    std::printf("flow control on a 3^4 torus, 16-flit messages, 8 VCs, "
                "30%% uniform random load\n\n");
    std::printf("%-16s %10s %8s %8s %8s %12s\n", "technique", "mean",
                "p50", "p99", "p99.9", "throughput");
    for (const char* fc :
         {"flit_buffer", "packet_buffer", "winner_take_all"}) {
        ss::RunResult result = ss::runSimulation(makeConfig(fc));
        if (result.saturated) {
            std::printf("%-16s %10s\n", fc, "SATURATED");
            continue;
        }
        ss::Distribution latency =
            result.sampler.totalLatencyDistribution();
        std::printf("%-16s %10.1f %8.0f %8.0f %8.0f %12.3f\n", fc,
                    latency.mean(), latency.percentile(50),
                    latency.percentile(99), latency.percentile(99.9),
                    result.throughput());
    }
    std::printf("\nwith small packets at large scale the technique "
                "matters little; with long messages flit-level "
                "scheduling routes around blocked packets "
                "(paper §VI-C).\n");
    return 0;
}
