/**
 * @file
 * Quickstart: build a small 4x4 torus, drive it with uniform random
 * traffic at 30% load, and print latency statistics.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "json/json.h"
#include "sim/builder.h"

int
main()
{
    // Configurations are plain JSON (paper §III-C). 1 tick = 1 ns here.
    ss::json::Value config = ss::json::parse(R"({
      "simulator": {"seed": 42, "time_limit": 10000000},
      "network": {
        "topology": "torus",
        "widths": [4, 4],
        "concentration": 1,
        "num_vcs": 2,
        "clock_period": 1,
        "channel_latency": 5,
        "router": {
          "architecture": "input_queued",
          "input_buffer_size": 16,
          "crossbar_latency": 2,
          "crossbar_scheduler": {"flow_control": "flit_buffer"}
        },
        "routing": {"algorithm": "torus_dimension_order"}
      },
      "workload": {
        "applications": [{
          "type": "blast",
          "injection_rate": 0.3,
          "message_size": 4,
          "num_samples": 200,
          "warmup_duration": 2000,
          "traffic": {"type": "uniform_random"}
        }]
      }
    })");

    ss::RunResult result = ss::runSimulation(config);
    std::printf("%s", result.summary().c_str());

    ss::Distribution latency = result.sampler.totalLatencyDistribution();
    std::printf("\npercentile distribution (ns):\n");
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        std::printf("  p%-5.1f = %.0f\n", p, latency.percentile(p));
    }
    return 0;
}
