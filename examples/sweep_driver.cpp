/**
 * @file
 * Example: the SSSweep workflow in C++ (paper §V, Listing 2).
 *
 * Declares two sweep variables — channel latency and message size —
 * exactly as the paper's Listing 2 does in Python, generates the cross
 * product, runs every simulation through the dependency-ordered task
 * executor, and prints the collected results table.
 *
 *   $ ./sweep_driver
 */
#include <cstdio>

#include "json/settings.h"
#include "sim/builder.h"
#include "tools/sweeper.h"

int
main()
{
    ss::json::Value base = ss::json::parse(R"({
      "simulator": {"seed": 9, "time_limit": 2000000},
      "network": {
        "topology": "hyperx",
        "widths": [4],
        "concentration": 2,
        "num_vcs": 2,
        "clock_period": 1,
        "channel_latency": 1,
        "router": {"architecture": "input_queued",
                    "input_buffer_size": 64,
                    "crossbar_latency": 1},
        "routing": {"algorithm": "hyperx_dimension_order"}
      },
      "workload": {
        "applications": [{
          "type": "blast",
          "injection_rate": 0.35,
          "message_size": 1,
          "num_samples": 150,
          "warmup_duration": 2000,
          "traffic": {"type": "uniform_random"}
        }]
      }
    })");

    // The paper's Listing 2, transliterated:
    //   latencies = [1, 2, 4, 8, 16, 32, 64]
    //   def set_latency(latency, config):
    //       return "network.channel.latency=uint=" + str(latency)
    //   sweeper.add_variable("ChannelLatency", "CL", latencies,
    //                        set_latency)
    ss::Sweeper sweeper;
    sweeper.addVariable(
        "ChannelLatency", "CL", {"1", "2", "4", "8", "16", "32", "64"},
        [](const std::string& latency) {
            return std::vector<std::string>{
                "network.channel_latency=uint=" + latency};
        });
    sweeper.addVariable(
        "MessageSize", "MS", {"1", "4"},
        [](const std::string& size) {
            return std::vector<std::string>{
                "workload.applications.0.message_size=uint=" + size};
        });

    auto rows = sweeper.runAll(
        base,
        [](const ss::json::Value& config, const ss::SweepPoint& point) {
            std::fprintf(stderr, "running %s...\n", point.id.c_str());
            ss::RunResult result = ss::runSimulation(config);
            std::map<std::string, double> metrics;
            ss::Distribution latency =
                result.sampler.totalLatencyDistribution();
            metrics["mean_latency"] = latency.mean();
            metrics["p99_latency"] = latency.percentile(99);
            metrics["throughput"] = result.throughput();
            return metrics;
        },
        /*num_threads=*/2);

    std::printf("%zu simulations swept; results:\n\n",
                rows.size());
    std::printf("%s", ss::Sweeper::toCsv(rows).c_str());
    std::printf("\nmean latency scales with channel latency; the sweep "
                "machinery (cross product -> overrides -> dependency-"
                "ordered execution -> results table) is the paper's "
                "SSSweep flow.\n");
    return 0;
}
