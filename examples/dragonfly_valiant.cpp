/**
 * @file
 * Example: minimal versus Valiant routing on a Dragonfly under an
 * adversarial group-to-group pattern, plus the per-channel utilization
 * view that shows *why* — the single minimal global channel saturates
 * while Valiant spreads load across intermediate groups.
 *
 *   $ ./dragonfly_valiant
 */
#include <algorithm>
#include <cstdio>

#include "json/settings.h"
#include "sim/builder.h"

namespace {

ss::json::Value
makeConfig(const std::string& algorithm)
{
    return ss::json::parse(ss::strf(R"({
      "simulator": {"seed": 31, "time_limit": 200000},
      "network": {
        "topology": "dragonfly",
        "group_size": 4,
        "global_channels": 2,
        "concentration": 2,
        "num_vcs": 4,
        "clock_period": 1,
        "channel_latency": 5,
        "global_latency": 20,
        "router": {
          "architecture": "input_queued",
          "input_buffer_size": 64,
          "crossbar_latency": 2
        },
        "routing": {"algorithm": ")", algorithm, R"("}
      },
      "workload": {
        "applications": [{
          "type": "blast",
          "injection_rate": 0.5,
          "message_size": 1,
          "warmup_duration": 3000,
          "sample_duration": 8000,
          "traffic": {"type": "neighbor", "offset": 8}
        }]
      }
    })"));
}

}  // namespace

int
main()
{
    std::printf("dragonfly (9 groups x 4 routers x 2 terminals), every "
                "group floods the next group\n\n");
    for (const char* algorithm :
         {"dragonfly_minimal", "dragonfly_valiant"}) {
        ss::Simulation simulation(makeConfig(algorithm));
        ss::RunResult result = simulation.run();

        auto utilizations = simulation.network()->channelUtilizations();
        std::sort(utilizations.begin(), utilizations.end(),
                  [](const auto& a, const auto& b) {
                      return a.second > b.second;
                  });
        std::printf("%s:\n", algorithm);
        std::printf("  accepted throughput %.3f flits/terminal/cycle%s\n",
                    result.throughput(),
                    result.saturated ? " (saturated)" : "");
        std::printf("  busiest channels:\n");
        for (std::size_t i = 0; i < 3 && i < utilizations.size(); ++i) {
            std::printf("    %-28s %.2f\n",
                        utilizations[i].first.c_str(),
                        utilizations[i].second);
        }
        std::printf("\n");
    }
    std::printf("minimal routing pins the group pair's one global "
                "channel at full utilization; Valiant spreads the load "
                "and roughly doubles accepted throughput (Kim et al. "
                "ISCA'08).\n");
    return 0;
}
